package crash

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/cluster"
	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/shard"
)

// copyDir clones a built shard directory so a second server can serve
// the same shard as an independent replica (own files, own WAL).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, buf, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// startServerAt is startServer pinned to a chosen address, so a killed
// replica can be restarted where the cluster manifest expects it. The
// log appends across incarnations.
func startServerAt(t *testing.T, dir, addr string, extraArgs ...string) *serverProc {
	t.Helper()
	logf, err := os.OpenFile(filepath.Join(dir, "server.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-index", dir, "-addr", addr}, extraArgs...)
	cmd := exec.Command(serverBin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serverProc{cmd: cmd, base: "http://" + addr, log: logf}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			p.kill()
			t.Fatalf("server on %s never became healthy", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// coordStatus fetches the coordinator's /healthz status field.
func coordStatus(base string) string {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var hz struct {
		Status string `json:"status"`
	}
	if json.NewDecoder(resp.Body).Decode(&hz) != nil {
		return ""
	}
	return hz.Status
}

// clusterSearch POSTs one query; returns the HTTP code and how many
// results came back.
func clusterSearch(base string, q []float32, k int, requireFull bool) (int, int, error) {
	body, _ := json.Marshal(map[string]any{"query": q, "k": k, "require_full": requireFull})
	resp, err := http.Post(base+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, 0, err
	}
	var out struct {
		Results []struct {
			ID uint64 `json:"id"`
		} `json:"results"`
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		return resp.StatusCode, 0, fmt.Errorf("bad body %s: %w", payload, err)
	}
	return resp.StatusCode, len(out.Results), nil
}

// TestClusterReplicaKillStorm is the cluster chaos bar: a 2-shard
// cluster with a replicated shard serves a 4-worker query storm while
// the preferred replica of shard 0 is SIGKILLed mid-storm. The
// coordinator must fail over with ZERO failed queries (require_full
// stays false — the shard still has a live replica, so answers stay
// complete anyway), report the failovers in its stats, and return to
// full health after the replica restarts on the same address.
func TestClusterReplicaKillStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-injection; skipped in -short")
	}
	root := artifactDir(t, "cluster")

	// One sharded build; replica dirs are clones of the shard dirs.
	ds := data.Generate(data.Config{Name: "chaos", N: 400, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 21})
	buildDir := filepath.Join(root, "build")
	idx, err := hdindex.Build(buildDir, ds.Vectors, hdindex.Options{
		Tau: 2, Omega: 8, M: 3, Alpha: 256, Gamma: 64, Seed: 9, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	shard0 := filepath.Join(buildDir, "shard-00")
	shard1 := filepath.Join(buildDir, "shard-01")
	replica0b := filepath.Join(root, "replica-0b")
	copyDir(t, shard0, replica0b)
	id, err := shard.ReadIdentity(shard0)
	if err != nil || id == nil {
		t.Fatalf("shard identity: %v %v", id, err)
	}

	addrA0 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	addrB0 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	addrS1 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	manPath := filepath.Join(root, "cluster.json")
	err = cluster.WriteManifest(manPath, &cluster.Manifest{
		FormatVersion: cluster.ManifestFormatVersion,
		UUID:          id.ClusterUUID,
		Dim:           16,
		Shards: []cluster.ShardSpec{
			{Ordinal: 0, Replicas: []string{addrA0, addrB0}},
			{Ordinal: 1, Replicas: []string{addrS1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	a0 := startServerAt(t, shard0, addrA0)
	b0 := startServerAt(t, replica0b, addrB0)
	defer b0.kill()
	s1 := startServerAt(t, shard1, addrS1)
	defer s1.kill()

	coordDir := filepath.Join(root, "coord")
	if err := os.MkdirAll(coordDir, 0o755); err != nil {
		t.Fatal(err)
	}
	coord := startServerAt(t, coordDir, fmt.Sprintf("127.0.0.1:%d", freePort(t)),
		"-coordinator", "-cluster-manifest", manPath, "-health-interval", "100ms")
	defer coord.kill()

	// The storm: 4 workers, each blocking at its midpoint until the
	// kill has landed, so at least half the queries run against the
	// degraded cluster. The killer fires once a quarter of the storm
	// has completed — strictly before any worker's midpoint barrier.
	queries := ds.PerturbedQueries(16, 0.01, 33)
	const workers, perWorker = 4, 80
	var done atomic.Int64
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for done.Load() < workers*perWorker/4 {
			time.Sleep(2 * time.Millisecond)
		}
		a0.kill()
	}()

	var failures atomic.Int64
	var once sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i == perWorker/2 {
					<-killed
				}
				q := queries[(w*perWorker+i)%len(queries)]
				code, n, err := clusterSearch(coord.base, q, 10, false)
				if err != nil || code != http.StatusOK || n != 10 {
					failures.Add(1)
					once.Do(func() {
						t.Errorf("worker %d query %d failed: code=%d results=%d err=%v", w, i, code, n, err)
					})
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	<-killed
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d of %d queries failed across the replica kill, want 0", f, workers*perWorker)
	}

	// The failover must be visible in the coordinator's own telemetry.
	resp, err := http.Get(coord.base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Coordinator cluster.Stats `json:"coordinator"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Coordinator.Failovers == 0 {
		t.Fatalf("coordinator reports no failovers after a replica kill: %+v", st.Coordinator)
	}

	// Recovery: restart the killed replica on its manifest address; the
	// health checker must fold it back in and report full health.
	a0 = startServerAt(t, shard0, addrA0)
	defer a0.kill()
	deadline := time.Now().Add(20 * time.Second)
	for coordStatus(coord.base) != "ok" {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never returned to ok after replica restart (status %q)", coordStatus(coord.base))
		}
		time.Sleep(50 * time.Millisecond)
	}
	// With every replica back, a require_full query must succeed.
	code, n, err := clusterSearch(coord.base, queries[0], 10, true)
	if err != nil || code != http.StatusOK || n != 10 {
		t.Fatalf("require_full after recovery: code=%d results=%d err=%v", code, n, err)
	}
}
