// Package vecstore stores the raw dataset vectors in a paged file.
//
// HD-Index never keeps descriptors inside the tree (that is the point of
// the RDB-tree leaf design, §3.2): the final refinement step (§4.3)
// follows object pointers and pays one random disk access per candidate
// — the κ = O(τ·γ) accesses of the I/O analysis in §4.4.1. This store is
// that pointer target, with the pager's counters measuring those reads.
//
// Records are fixed-size (4·dim bytes) and packed back to back in the
// data region after the superblock; a vector may span page boundaries
// (e.g. Enron's ν=1369 needs 5476 bytes, more than one 4096-byte page),
// and the I/O counters reflect every page touched.
package vecstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/hd-index/hdindex/internal/pager"
)

// Errors returned by the store.
var (
	ErrBadID  = errors.New("vecstore: object id out of range")
	ErrDim    = errors.New("vecstore: dimension mismatch")
	ErrHeader = errors.New("vecstore: corrupt store header")
)

// Store is a fixed-dimension vector file. Safe for concurrent readers.
type Store struct {
	pgr   *pager.Pager
	dim   int
	count uint64
}

// Create initialises an empty store of dim-dimensional vectors in pgr.
func Create(pgr *pager.Pager, dim int) (*Store, error) {
	if dim < 1 {
		return nil, fmt.Errorf("vecstore: dim must be >= 1, got %d", dim)
	}
	s := &Store{pgr: pgr, dim: dim}
	return s, s.writeHeader()
}

// Open loads an existing store from pgr's metadata.
func Open(pgr *pager.Pager) (*Store, error) {
	meta := pgr.Meta()
	if len(meta) < 12 {
		return nil, ErrHeader
	}
	return &Store{
		pgr:   pgr,
		dim:   int(binary.BigEndian.Uint32(meta[0:])),
		count: binary.BigEndian.Uint64(meta[4:]),
	}, nil
}

func (s *Store) writeHeader() error {
	meta := make([]byte, 12)
	binary.BigEndian.PutUint32(meta[0:], uint32(s.dim))
	binary.BigEndian.PutUint64(meta[4:], s.count)
	return s.pgr.SetMeta(meta)
}

// Dim returns the vector dimensionality ν.
func (s *Store) Dim() int { return s.dim }

// Count returns the number of stored vectors.
func (s *Store) Count() uint64 { return s.count }

// Pager exposes the underlying pager for stats and closing.
func (s *Store) Pager() *pager.Pager { return s.pgr }

func (s *Store) recSize() int { return 4 * s.dim }

// byte range of record id within the data region (which starts at page 1).
func (s *Store) recRange(id uint64) (firstPage pager.PageID, firstOff, size int) {
	off := int64(id) * int64(s.recSize())
	ps := int64(s.pgr.PageSize())
	return pager.PageID(1 + off/ps), int(off % ps), s.recSize()
}

// PageOf returns the id of the page holding the first byte of record
// id. Records are packed in id order, so sorting candidate ids sorts
// their page accesses too — core's refinement step uses this layout
// fact to turn random reads into mostly-sequential pool hits.
func (s *Store) PageOf(id uint64) pager.PageID {
	first, _, _ := s.recRange(id)
	return first
}

// VecView is a pinned zero-copy view of one stored vector: Vec aliases
// the buffer-pool frame itself. It is read-only and valid only until
// Release.
type VecView struct {
	Vec  []float32
	view pager.View
}

// Release unpins the underlying page. The view must not be used after.
func (v VecView) Release() { v.view.Release() }

// GetView returns a pinned zero-copy view of vector id, skipping Get's
// per-float decode copy. ok is false when the borrow is unavailable —
// the record spans a page boundary (e.g. Enron's ν=1369), the bytes
// cannot be reinterpreted in place (big-endian CPU, misaligned page
// slot), or the page read failed — and the caller must fall back to
// Get, which handles all record shapes and surfaces I/O errors.
func (s *Store) GetView(id uint64) (VecView, bool) {
	if id >= s.count {
		return VecView{}, false
	}
	first, off, size := s.recRange(id)
	if off+size > s.pgr.PageSize() {
		return VecView{}, false
	}
	pv, err := s.pgr.View(first)
	if err != nil {
		return VecView{}, false
	}
	seg := pv.Data[off : off+size]
	if !viewable(seg) {
		pv.Release()
		return VecView{}, false
	}
	return VecView{Vec: castFloat32(seg, s.dim), view: pv}, true
}

// Append adds a vector and returns its object id (0-based, dense).
func (s *Store) Append(vec []float32) (uint64, error) {
	if len(vec) != s.dim {
		return 0, ErrDim
	}
	id := s.count
	buf := make([]byte, s.recSize())
	for i, v := range vec {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	if err := s.writeBytes(int64(id)*int64(s.recSize()), buf); err != nil {
		return 0, err
	}
	s.count++
	return id, s.writeHeader()
}

// BuildFrom bulk-appends all vectors; far fewer header writes than
// repeated Append calls.
func (s *Store) BuildFrom(vecs [][]float32) error {
	buf := make([]byte, s.recSize())
	for _, vec := range vecs {
		if len(vec) != s.dim {
			return ErrDim
		}
		for i, v := range vec {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if err := s.writeBytes(int64(s.count)*int64(s.recSize()), buf); err != nil {
			return err
		}
		s.count++
	}
	return s.writeHeader()
}

// AppendAll bulk-appends vecs with crash-safe ordering: every record's
// bytes are written and fsynced before the count header advances, and
// the header commit is its own sync. A crash anywhere leaves either the
// old count (the new bytes are invisible garbage past the end) or the
// new count with every record durable — never a count that admits torn
// records. The compaction commit path depends on exactly this.
func (s *Store) AppendAll(vecs [][]float32) error {
	if len(vecs) == 0 {
		return nil
	}
	buf := make([]byte, s.recSize())
	off := int64(s.count) * int64(s.recSize())
	for _, vec := range vecs {
		if len(vec) != s.dim {
			return ErrDim
		}
		for i, v := range vec {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if err := s.writeBytes(off, buf); err != nil {
			return err
		}
		off += int64(s.recSize())
	}
	// Data first: pages (and the superblock, still carrying the old
	// count) reach disk before the count that makes them reachable.
	if err := s.pgr.Sync(); err != nil {
		return err
	}
	s.count += uint64(len(vecs))
	if err := s.writeHeader(); err != nil {
		s.count -= uint64(len(vecs))
		return err
	}
	if err := s.pgr.Sync(); err != nil {
		return err
	}
	return nil
}

// ResetCount rewinds the record count to n (n <= Count) and persists
// the header. Open's crash reconciliation uses it to drop an appended
// tail whose commit point (the index meta) never landed; the bytes stay
// in place and are overwritten by the re-run append.
func (s *Store) ResetCount(n uint64) error {
	if n > s.count {
		return fmt.Errorf("vecstore: reset count %d above current %d", n, s.count)
	}
	if n == s.count {
		return nil
	}
	s.count = n
	if err := s.writeHeader(); err != nil {
		return err
	}
	return s.pgr.Flush()
}

// writeBytes writes buf at the given data-region offset, allocating pages
// as needed.
func (s *Store) writeBytes(off int64, buf []byte) error {
	ps := int64(s.pgr.PageSize())
	for len(buf) > 0 {
		pageIdx := pager.PageID(1 + off/ps)
		inPage := int(off % ps)
		n := int(ps) - inPage
		if n > len(buf) {
			n = len(buf)
		}
		for uint64(pageIdx) >= s.pgr.PageCount() {
			pg, err := s.pgr.Alloc()
			if err != nil {
				return err
			}
			pg.MarkDirty()
			pg.Release()
		}
		pg, err := s.pgr.Get(pageIdx)
		if err != nil {
			return err
		}
		copy(pg.Data[inPage:inPage+n], buf[:n])
		pg.MarkDirty()
		pg.Release()
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// Get reads vector id into dst (length Dim) and returns dst; if dst is
// nil a fresh slice is allocated.
func (s *Store) Get(id uint64, dst []float32) ([]float32, error) {
	if id >= s.count {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrBadID, id, s.count)
	}
	if dst == nil {
		dst = make([]float32, s.dim)
	} else if len(dst) != s.dim {
		return nil, ErrDim
	}
	ps := int64(s.pgr.PageSize())
	off := int64(id) * int64(s.recSize())
	remaining := s.recSize()
	outIdx := 0
	var partial [4]byte
	partialLen := 0
	for remaining > 0 {
		pageIdx := pager.PageID(1 + off/ps)
		inPage := int(off % ps)
		n := int(ps) - inPage
		if n > remaining {
			n = remaining
		}
		pg, err := s.pgr.Get(pageIdx)
		if err != nil {
			return nil, err
		}
		chunk := pg.Data[inPage : inPage+n]
		// Assemble float32 values across the chunk (and page splits).
		for len(chunk) > 0 {
			if partialLen > 0 || len(chunk) < 4 {
				for partialLen < 4 && len(chunk) > 0 {
					partial[partialLen] = chunk[0]
					partialLen++
					chunk = chunk[1:]
				}
				if partialLen == 4 {
					dst[outIdx] = math.Float32frombits(binary.LittleEndian.Uint32(partial[:]))
					outIdx++
					partialLen = 0
				}
				continue
			}
			dst[outIdx] = math.Float32frombits(binary.LittleEndian.Uint32(chunk))
			outIdx++
			chunk = chunk[4:]
		}
		pg.Release()
		off += int64(n)
		remaining -= n
	}
	return dst, nil
}

// Flush persists the header and dirty pages.
func (s *Store) Flush() error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	return s.pgr.Flush()
}
