package vecstore

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/pager"
)

func mkStore(t *testing.T, dim, pageSize int) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "vecs.pg")
	pgr, err := pager.Open(path, pager.Options{Create: true, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Create(pgr, dim)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pgr.Close() })
	return s, path
}

func randVecs(rng *rand.Rand, n, dim int) [][]float32 {
	vecs := make([][]float32, n)
	for i := range vecs {
		v := make([]float32, dim)
		for d := range v {
			v[d] = rng.Float32()*200 - 100
		}
		vecs[i] = v
	}
	return vecs
}

func TestAppendGetRoundTrip(t *testing.T) {
	s, _ := mkStore(t, 8, 256)
	rng := rand.New(rand.NewSource(1))
	vecs := randVecs(rng, 100, 8)
	for i, v := range vecs {
		id, err := s.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint64(i) {
			t.Fatalf("id = %d, want %d", id, i)
		}
	}
	for i, want := range vecs {
		got, err := s.Get(uint64(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("vec %d dim %d = %v, want %v", i, d, got[d], want[d])
			}
		}
	}
}

// Vectors larger than a page must span pages correctly (Enron: ν=1369,
// 5476 bytes > 4096-byte pages).
func TestVectorSpanningPages(t *testing.T) {
	s, _ := mkStore(t, 100, 128) // 400-byte records on 128-byte pages
	rng := rand.New(rand.NewSource(2))
	vecs := randVecs(rng, 20, 100)
	if err := s.BuildFrom(vecs); err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 100)
	for i, want := range vecs {
		got, err := s.Get(uint64(i), dst)
		if err != nil {
			t.Fatal(err)
		}
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("vec %d dim %d mismatch", i, d)
			}
		}
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.pg")
	pgr, err := pager.Open(path, pager.Options{Create: true, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Create(pgr, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	vecs := randVecs(rng, 33, 4)
	if err := s.BuildFrom(vecs); err != nil {
		t.Fatal(err)
	}
	if err := pgr.Close(); err != nil {
		t.Fatal(err)
	}

	pgr2, err := pager.Open(path, pager.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pgr2.Close()
	s2, err := Open(pgr2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Dim() != 4 || s2.Count() != 33 {
		t.Fatalf("reopened dim=%d count=%d", s2.Dim(), s2.Count())
	}
	got, err := s2.Get(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	for d := range got {
		if got[d] != vecs[32][d] {
			t.Fatal("content mismatch after reopen")
		}
	}
}

func TestErrors(t *testing.T) {
	s, _ := mkStore(t, 4, 256)
	if _, err := s.Append([]float32{1}); !errors.Is(err, ErrDim) {
		t.Error("short vector must fail")
	}
	if _, err := s.Get(0, nil); !errors.Is(err, ErrBadID) {
		t.Error("get from empty store must fail")
	}
	s.Append([]float32{1, 2, 3, 4})
	if _, err := s.Get(1, nil); !errors.Is(err, ErrBadID) {
		t.Error("out of range id must fail")
	}
	if _, err := s.Get(0, make([]float32, 3)); !errors.Is(err, ErrDim) {
		t.Error("wrong dst length must fail")
	}
	if err := s.BuildFrom([][]float32{{1}}); !errors.Is(err, ErrDim) {
		t.Error("BuildFrom wrong dim must fail")
	}
}

func TestCreateValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.pg")
	pgr, err := pager.Open(path, pager.Options{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pgr.Close()
	if _, err := Create(pgr, 0); err == nil {
		t.Error("dim=0 must fail")
	}
}

// Random reads must cost at least one physical page access when the pool
// is cold — the property Fig. 8 query-time measurements rely on.
func TestReadCountsIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "io.pg")
	pgr, err := pager.Open(path, pager.Options{Create: true, PageSize: 256, DisableLRU: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pgr.Close()
	s, err := Create(pgr, 16) // 64-byte records, 4 per page
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if err := s.BuildFrom(randVecs(rng, 64, 16)); err != nil {
		t.Fatal(err)
	}
	pgr.ResetStats()
	for i := 0; i < 10; i++ {
		if _, err := s.Get(uint64(rng.Intn(64)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := pgr.Stats(); st.Reads < 10 {
		t.Fatalf("expected >= 10 physical reads with cache off, got %d", st.Reads)
	}
}

func BenchmarkGet128(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.pg")
	pgr, _ := pager.Open(path, pager.Options{Create: true})
	defer pgr.Close()
	s, _ := Create(pgr, 128)
	rng := rand.New(rand.NewSource(5))
	vecs := randVecs(rng, 1000, 128)
	s.BuildFrom(vecs)
	dst := make([]float32, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(uint64(i%1000), dst)
	}
}

// GetView must hand back exactly the bytes Get decodes, zero-copy, for
// every record that fits in one page.
func TestGetViewMatchesGet(t *testing.T) {
	const dim, n = 16, 50 // 64-byte records, 4 per 256-byte page: never spans
	pgr, err := pager.Open(filepath.Join(t.TempDir(), "v.pg"), pager.Options{Create: true, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pgr.Close()
	s, err := Create(pgr, dim)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	vecs := make([][]float32, n)
	for i := range vecs {
		v := make([]float32, dim)
		for d := range v {
			v[d] = rng.Float32()*2 - 1
		}
		vecs[i] = v
	}
	if err := s.BuildFrom(vecs); err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < n; id++ {
		view, ok := s.GetView(id)
		if !ok {
			t.Fatalf("GetView(%d) not ok for a non-spanning record", id)
		}
		got, err := s.Get(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		for d := range got {
			if view.Vec[d] != got[d] {
				t.Fatalf("id %d dim %d: view %v != get %v", id, d, view.Vec[d], got[d])
			}
		}
		view.Release()
	}
	// Out-of-range ids fall back (ok=false) rather than erroring.
	if _, ok := s.GetView(n); ok {
		t.Fatal("GetView past count must report ok=false")
	}
}

// Records that straddle a page boundary must decline the view and leave
// the caller on the (correct) copying path.
func TestGetViewSpanningRecordFallsBack(t *testing.T) {
	const dim = 60 // 240-byte records in 256-byte pages: most straddle
	pgr, err := pager.Open(filepath.Join(t.TempDir(), "s.pg"), pager.Options{Create: true, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pgr.Close()
	s, err := Create(pgr, dim)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([][]float32, 10)
	for i := range vecs {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(i*dim + d)
		}
		vecs[i] = v
	}
	if err := s.BuildFrom(vecs); err != nil {
		t.Fatal(err)
	}
	sawFallback := false
	for id := uint64(0); id < 10; id++ {
		view, ok := s.GetView(id)
		want, err := s.Get(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			sawFallback = true
			continue
		}
		for d := range want {
			if view.Vec[d] != want[d] {
				t.Fatalf("id %d dim %d: view %v != get %v", id, d, view.Vec[d], want[d])
			}
		}
		view.Release()
	}
	if !sawFallback {
		t.Fatal("expected at least one page-spanning record to decline the view")
	}
}

// PageOf must agree with where Get actually reads.
func TestPageOf(t *testing.T) {
	const dim = 16 // 64-byte records, 4 per 256-byte page
	pgr, err := pager.Open(filepath.Join(t.TempDir(), "p.pg"), pager.Options{Create: true, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pgr.Close()
	s, err := Create(pgr, dim)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[uint64]pager.PageID{0: 1, 3: 1, 4: 2, 7: 2, 8: 3} {
		if got := s.PageOf(id); got != want {
			t.Errorf("PageOf(%d) = %d, want %d", id, got, want)
		}
	}
	// Monotone in id: the layout fact the page-ordered fetch relies on.
	for id := uint64(1); id < 100; id++ {
		if s.PageOf(id) < s.PageOf(id-1) {
			t.Fatalf("PageOf not monotone at id %d", id)
		}
	}
}
