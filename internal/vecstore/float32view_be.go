//go:build !(386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm)

package vecstore

// Big-endian platforms cannot alias the little-endian on-disk bytes as
// native float32s; GetView always reports ok=false and callers take the
// decoding Get path.

func viewable(b []byte) bool { return false }

func castFloat32(b []byte, n int) []float32 {
	panic("vecstore: zero-copy float32 view is unavailable on this platform")
}
