//go:build 386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm

package vecstore

import "unsafe"

// The store's on-disk format is little-endian float32 (matching every
// dataset file format the paper uses), so on little-endian CPUs a page
// slot holding a whole record IS the []float32 — no decode needed.

// viewable reports whether b can be reinterpreted in place as float32s:
// here only alignment can rule it out (page sizes are multiples of 4 in
// practice, but the format does not forbid odd ones).
func viewable(b []byte) bool {
	return len(b) >= 4 && uintptr(unsafe.Pointer(&b[0]))%4 == 0
}

// castFloat32 reinterprets b (length >= 4*n, 4-byte aligned) as n
// float32s sharing b's storage.
func castFloat32(b []byte, n int) []float32 {
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
}
