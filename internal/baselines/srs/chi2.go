package srs

import "math"

// chiSqCDF returns Ψ_m(x): the CDF of the chi-squared distribution with
// m degrees of freedom at x — the quantity SRS' early-termination test
// evaluates (projected squared distances of 2-stable projections follow
// d²·χ²_m). Computed as the regularised lower incomplete gamma function
// P(m/2, x/2) via the classic series / continued-fraction split.
func chiSqCDF(m int, x float64) float64 {
	if x <= 0 {
		return 0
	}
	return gammaP(float64(m)/2, x/2)
}

// gammaP is the regularised lower incomplete gamma function P(a, x).
func gammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gser(a, x)
	default:
		return 1 - gcf(a, x)
	}
}

// gser evaluates P(a,x) by its series representation.
func gser(a, x float64) float64 {
	const itmax = 200
	const eps = 3e-14
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lnGamma(a))
}

// gcf evaluates Q(a,x) = 1 - P(a,x) by continued fraction (Lentz).
func gcf(a, x float64) float64 {
	const itmax = 200
	const eps = 3e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lnGamma(a)) * h
}

func lnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
