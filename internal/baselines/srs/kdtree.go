package srs

import (
	"container/heap"
	"sort"
)

// kdTree is a balanced kd-tree over low-dimensional (m' ≈ 6) projected
// points, supporting best-first incremental nearest-neighbour traversal —
// the access pattern SRS' query algorithm needs (it consumes projected
// NNs one at a time until its early-termination test fires).
type kdTree struct {
	points [][]float32
	dim    int
	root   *kdNode
}

type kdNode struct {
	lo, hi      []float32 // bounding box
	axis        int
	left, right *kdNode
	leafIdx     []int32 // point indices; non-nil only for leaves
}

const kdLeafSize = 16

func buildKDTree(points [][]float32) *kdTree {
	t := &kdTree{points: points, dim: len(points[0])}
	idx := make([]int32, len(points))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.root = t.build(idx)
	return t
}

func (t *kdTree) build(idx []int32) *kdNode {
	n := &kdNode{lo: make([]float32, t.dim), hi: make([]float32, t.dim)}
	copy(n.lo, t.points[idx[0]])
	copy(n.hi, t.points[idx[0]])
	for _, i := range idx[1:] {
		p := t.points[i]
		for d := 0; d < t.dim; d++ {
			if p[d] < n.lo[d] {
				n.lo[d] = p[d]
			}
			if p[d] > n.hi[d] {
				n.hi[d] = p[d]
			}
		}
	}
	if len(idx) <= kdLeafSize {
		n.leafIdx = idx
		return n
	}
	// Split on the widest axis at the median.
	axis := 0
	width := n.hi[0] - n.lo[0]
	for d := 1; d < t.dim; d++ {
		if w := n.hi[d] - n.lo[d]; w > width {
			axis, width = d, w
		}
	}
	if width == 0 {
		n.leafIdx = idx // all points identical
		return n
	}
	n.axis = axis
	sort.Slice(idx, func(a, b int) bool {
		return t.points[idx[a]][axis] < t.points[idx[b]][axis]
	})
	mid := len(idx) / 2
	n.left = t.build(idx[:mid])
	n.right = t.build(idx[mid:])
	return n
}

// minDistSq returns the squared distance from q to the node's box.
func (n *kdNode) minDistSq(q []float32) float64 {
	var s float64
	for d, x := range q {
		switch {
		case x < n.lo[d]:
			dx := float64(n.lo[d]) - float64(x)
			s += dx * dx
		case x > n.hi[d]:
			dx := float64(x) - float64(n.hi[d])
			s += dx * dx
		}
	}
	return s
}

// kdIter yields point indices in non-decreasing distance from q.
type kdIter struct {
	t *kdTree
	q []float32
	h *kdHeap
}

type kdHeapItem struct {
	distSq float64
	node   *kdNode // nil => point
	point  int32
}

type kdHeap []kdHeapItem

func (h kdHeap) Len() int            { return len(h) }
func (h kdHeap) Less(i, j int) bool  { return h[i].distSq < h[j].distSq }
func (h kdHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *kdHeap) Push(x interface{}) { *h = append(*h, x.(kdHeapItem)) }
func (h *kdHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// newIter starts an incremental NN traversal from q.
func (t *kdTree) newIter(q []float32) *kdIter {
	h := &kdHeap{}
	heap.Push(h, kdHeapItem{distSq: t.root.minDistSq(q), node: t.root})
	return &kdIter{t: t, q: q, h: h}
}

// next returns the next nearest point index and its squared projected
// distance; ok = false when exhausted.
func (it *kdIter) next() (idx int32, distSq float64, ok bool) {
	for it.h.Len() > 0 {
		item := heap.Pop(it.h).(kdHeapItem)
		if item.node == nil {
			return item.point, item.distSq, true
		}
		n := item.node
		if n.leafIdx != nil {
			for _, pi := range n.leafIdx {
				p := it.t.points[pi]
				var d float64
				for dd, x := range it.q {
					dx := float64(x) - float64(p[dd])
					d += dx * dx
				}
				heap.Push(it.h, kdHeapItem{distSq: d, node: nil, point: pi})
			}
			continue
		}
		heap.Push(it.h, kdHeapItem{distSq: n.left.minDistSq(it.q), node: n.left})
		heap.Push(it.h, kdHeapItem{distSq: n.right.minDistSq(it.q), node: n.right})
	}
	return 0, 0, false
}
