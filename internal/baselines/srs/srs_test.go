package srs

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

func TestChiSqCDF(t *testing.T) {
	// Known values: Ψ_2(x) = 1 - e^{-x/2}.
	for _, x := range []float64{0.1, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x/2)
		if got := chiSqCDF(2, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("Ψ_2(%v) = %v, want %v", x, got, want)
		}
	}
	// Median of χ²_1 is ≈ 0.4549.
	if got := chiSqCDF(1, 0.4549); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("Ψ_1(median) = %v", got)
	}
	if chiSqCDF(6, 0) != 0 {
		t.Error("Ψ(0) must be 0")
	}
	// Monotone increasing.
	prev := 0.0
	for x := 0.5; x < 30; x += 0.5 {
		cur := chiSqCDF(6, x)
		if cur < prev {
			t.Fatal("CDF not monotone")
		}
		prev = cur
	}
	if prev < 0.99 {
		t.Error("CDF must approach 1")
	}
}

// The kd-tree incremental iterator must yield points in exactly the
// brute-force distance order.
func TestKDTreeIncrementalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	pts := make([][]float32, n)
	for i := range pts {
		p := make([]float32, 6)
		for d := range p {
			p[d] = float32(rng.NormFloat64())
		}
		pts[i] = p
	}
	tree := buildKDTree(pts)
	for trial := 0; trial < 10; trial++ {
		q := make([]float32, 6)
		for d := range q {
			q[d] = float32(rng.NormFloat64())
		}
		dists := make([]float64, n)
		order := make([]int, n)
		for i, p := range pts {
			var s float64
			for d := range q {
				dx := float64(q[d]) - float64(p[d])
				s += dx * dx
			}
			dists[i] = s
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
		it := tree.newIter(q)
		for rank := 0; rank < n; rank++ {
			idx, dsq, ok := it.next()
			if !ok {
				t.Fatalf("iterator exhausted at rank %d", rank)
			}
			if math.Abs(dsq-dists[order[rank]]) > 1e-9 {
				t.Fatalf("trial %d rank %d: dist %v, want %v (idx %d)", trial, rank, dsq, dists[order[rank]], idx)
			}
		}
		if _, _, ok := it.next(); ok {
			t.Fatal("iterator must exhaust after n points")
		}
	}
}

func TestSRSQuality(t *testing.T) {
	ds := data.Generate(data.Config{N: 5000, Dim: 32, Clusters: 8, Lo: 0, Hi: 1, Seed: 2})
	queries := ds.PerturbedQueries(20, 0.01, 3)
	// At tiny t (the paper's 0.00242) SRS examines few points; use the
	// default and check the ratio rather than MAP, which is SRS' actual
	// guarantee.
	ix, err := Build(ds.Vectors, Params{MaxFraction: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	truthIDs, truthDists := data.GroundTruth(ds.Vectors, queries, 10)
	var ratioSum float64
	var got [][]uint64
	for qi, q := range queries {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		dists := make([]float64, len(res))
		ids := make([]uint64, len(res))
		for i, r := range res {
			dists[i] = r.Dist
			ids[i] = r.ID
		}
		got = append(got, ids)
		ratioSum += metrics.Ratio(dists, truthDists[qi])
	}
	ratio := ratioSum / float64(len(queries))
	if ratio > 2.0 {
		t.Errorf("SRS mean ratio = %v, beyond its c=2 target", ratio)
	}
	// MAP will be modest (that is the paper's whole point) but nonzero.
	if m := metrics.MAP(got, truthIDs, 10); m <= 0 {
		t.Errorf("SRS MAP = %v", m)
	}
}

func TestExaminesBoundedFraction(t *testing.T) {
	ds := data.Uniform(2000, 16, 0, 1, 5)
	ix, err := Build(ds.Vectors, Params{MaxFraction: 0.01, Tau: 0.999999, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// With tau ≈ 1 early termination almost never fires, so the count is
	// governed by MaxFraction; just confirm search completes quickly and
	// returns k results.
	res, err := ix.Search(ds.Vectors[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("returned %d", len(res))
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build(nil, Params{}); err == nil {
		t.Error("empty dataset must fail")
	}
	ds := data.Uniform(100, 8, 0, 1, 7)
	ix, err := Build(ds.Vectors, Params{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(ds.Vectors[0][:2], 1); err == nil {
		t.Error("wrong dims must fail")
	}
	if _, err := ix.Search(ds.Vectors[0], 0); err == nil {
		t.Error("k=0 must fail")
	}
	if ix.Name() != "SRS" || ix.SizeBytes() <= 0 {
		t.Error("interface misbehaviour")
	}
	// SRS' index must be far smaller than the raw data (its key claim).
	raw := int64(100 * 8 * 4)
	_ = raw
	if ix.SizeBytes() >= int64(100*8*4)*2 {
		t.Errorf("SRS index %d should be small relative to data", ix.SizeBytes())
	}
}
