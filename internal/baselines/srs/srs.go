// Package srs implements SRS [64] (Sun et al., VLDB 2014), the
// tiny-index baseline of §5: every ν-dimensional point is projected by
// m' = 6 independent N(0,1) ("2-stable") projections into a 6-d space
// whose index — here a kd-tree supporting incremental NN — is linear in n
// and small enough for memory. A query walks projected neighbours in
// order, verifies each against the original vectors, and stops early when
// a chi-squared test says the current k-th answer is good enough
// (paper parameters: SRS-12, c = 2, m' = 6, τ = 0.1809, t = 0.00242).
package srs

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// Params configures SRS.
type Params struct {
	Projections  int     // m' (paper: 6)
	C            float64 // approximation ratio target (paper: 2)
	Tau          float64 // early-termination threshold p_τ (paper: 0.1809)
	MaxFraction  float64 // t: max fraction of points examined (paper: 0.00242)
	MinCandidate int     // absolute floor on examined points (default 1 per k... see Search)
	Seed         int64
}

// Index is a built SRS index.
type Index struct {
	params    Params
	dim       int
	proj      [][]float64 // m' × ν projection vectors
	projected [][]float32 // n × m'
	tree      *kdTree
	vectors   [][]float32 // originals, for verification
}

// Build constructs the index.
func Build(vectors [][]float32, p Params) (*Index, error) {
	if len(vectors) == 0 {
		return nil, errors.New("srs: empty dataset")
	}
	if p.Projections <= 0 {
		p.Projections = 6
	}
	if p.C <= 1 {
		p.C = 2
	}
	if p.Tau <= 0 {
		p.Tau = 0.1809
	}
	if p.MaxFraction <= 0 {
		p.MaxFraction = 0.00242
	}
	dim := len(vectors[0])
	rng := rand.New(rand.NewSource(p.Seed))

	ix := &Index{params: p, dim: dim, vectors: vectors}
	ix.proj = make([][]float64, p.Projections)
	for j := range ix.proj {
		w := make([]float64, dim)
		for d := range w {
			w[d] = rng.NormFloat64()
		}
		ix.proj[j] = w
	}
	ix.projected = make([][]float32, len(vectors))
	for i, v := range vectors {
		ix.projected[i] = ix.project(v)
	}
	ix.tree = buildKDTree(ix.projected)
	return ix, nil
}

func (ix *Index) project(v []float32) []float32 {
	out := make([]float32, len(ix.proj))
	for j, w := range ix.proj {
		var s float64
		for d, x := range v {
			s += w[d] * float64(x)
		}
		out[j] = float32(s)
	}
	return out
}

// Name implements baselines.Index.
func (ix *Index) Name() string { return "SRS" }

// Search implements baselines.Index (algorithm SRS-12).
func (ix *Index) Search(q []float32, k int) ([]baselines.Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("srs: query has %d dims, index has %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, errors.New("srs: k must be >= 1")
	}
	p := ix.params
	pq := ix.project(q)
	iter := ix.tree.newIter(pq)

	// T' = max(k+1, t·n) points may be examined.
	maxExamined := int(p.MaxFraction * float64(len(ix.vectors)))
	if maxExamined < k+1 {
		maxExamined = k + 1
	}
	if p.MinCandidate > maxExamined {
		maxExamined = p.MinCandidate
	}

	best := topk.New(k)
	examined := 0
	for examined < maxExamined {
		idx, projDistSq, ok := iter.next()
		if !ok {
			break
		}
		examined++
		best.Push(uint64(idx), vecmath.DistSq(q, ix.vectors[idx]))

		// Early termination: once the k-th exact distance d_k satisfies
		// Ψ_m'(δ²/(d_k/c)²) ≥ τ, a point at true distance below d_k/c
		// would almost surely have appeared among the projected NNs
		// already, so the current answer is a c-approximation.
		if bound, okB := best.Bound(); okB && bound > 0 {
			dkOverC := math.Sqrt(bound) / p.C
			if dkOverC > 0 && chiSqCDF(len(ix.proj), projDistSq/(dkOverC*dkOverC)) >= p.Tau {
				break
			}
		}
	}
	items := best.Items()
	out := make([]baselines.Result, len(items))
	for i, it := range items {
		out[i] = baselines.Result{ID: it.ID, Dist: math.Sqrt(it.Dist)}
	}
	return out, nil
}

// SizeBytes implements baselines.Index: the projected table plus tree —
// SRS' selling point is that this is tiny (m'·n floats).
func (ix *Index) SizeBytes() int64 {
	return int64(len(ix.projected))*int64(len(ix.proj))*4 + // projected points
		int64(len(ix.proj))*int64(ix.dim)*8 // projection matrix
}

// Close implements baselines.Index.
func (ix *Index) Close() error { return nil }
