// Package linearscan is the exact brute-force baseline ("Linear" in
// Table 6): it reads every vector and keeps the k nearest. With the
// curse of dimensionality this is what all exact hierarchical indexes
// degrade to [71], which is why the paper treats its running time as the
// practical upper bound.
package linearscan

import (
	"errors"
	"fmt"
	"math"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// Scan is an exact scanner over an in-memory dataset.
type Scan struct {
	vectors [][]float32
	dim     int
}

// New returns a scanner over vectors.
func New(vectors [][]float32) (*Scan, error) {
	if len(vectors) == 0 {
		return nil, errors.New("linearscan: empty dataset")
	}
	return &Scan{vectors: vectors, dim: len(vectors[0])}, nil
}

// Name implements baselines.Index.
func (s *Scan) Name() string { return "Linear" }

// Search implements baselines.Index; results are exact.
func (s *Scan) Search(q []float32, k int) ([]baselines.Result, error) {
	if len(q) != s.dim {
		return nil, fmt.Errorf("linearscan: query has %d dims, data has %d", len(q), s.dim)
	}
	if k < 1 {
		return nil, errors.New("linearscan: k must be >= 1")
	}
	best := topk.New(k)
	for id, v := range s.vectors {
		best.Push(uint64(id), vecmath.DistSq(q, v))
	}
	items := best.Items()
	out := make([]baselines.Result, len(items))
	for i, it := range items {
		out[i] = baselines.Result{ID: it.ID, Dist: math.Sqrt(it.Dist)}
	}
	return out, nil
}

// SizeBytes implements baselines.Index: the raw data footprint.
func (s *Scan) SizeBytes() int64 {
	return int64(len(s.vectors)) * int64(s.dim) * 4
}

// Close implements baselines.Index.
func (s *Scan) Close() error { return nil }
