package linearscan

import (
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

func TestExactAgainstGroundTruth(t *testing.T) {
	ds := data.Uniform(500, 16, 0, 1, 1)
	queries := ds.PerturbedQueries(10, 0.02, 2)
	s, err := New(ds.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	truthIDs, truthDists := data.GroundTruth(ds.Vectors, queries, 10)
	for qi, q := range queries {
		res, err := s.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.ID != truthIDs[qi][i] {
				t.Fatalf("query %d rank %d: %d vs %d", qi, i, r.ID, truthIDs[qi][i])
			}
			if diff := r.Dist - truthDists[qi][i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("distance mismatch at rank %d", i)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty dataset must fail")
	}
	s, err := New([][]float32{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search([]float32{1}, 1); err == nil {
		t.Error("wrong dims must fail")
	}
	if _, err := s.Search([]float32{1, 2}, 0); err == nil {
		t.Error("k=0 must fail")
	}
	if s.Name() != "Linear" || s.SizeBytes() != 8 {
		t.Errorf("interface: name=%s size=%d", s.Name(), s.SizeBytes())
	}
}
