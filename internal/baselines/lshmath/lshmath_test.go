package lshmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
		{3, 0.99865},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("Phi(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// Collision probabilities must decrease with distance and live in [0,1].
func TestPE2LSHMonotone(t *testing.T) {
	w := 1.0
	prev := 1.0
	for s := 0.1; s < 20; s += 0.1 {
		p := PE2LSH(w, s)
		if p < 0 || p > 1 {
			t.Fatalf("p(%v) = %v out of range", s, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("p not monotone at %v", s)
		}
		prev = p
	}
	if PE2LSH(w, 0) != 1 {
		t.Error("p(0) must be 1")
	}
}

func TestPE2LSHKnownValues(t *testing.T) {
	// p(1) with w=1 ≈ 0.3685, p(2) ≈ 0.1954 (E2LSH literature values).
	if got := PE2LSH(1, 1); math.Abs(got-0.3685) > 5e-3 {
		t.Errorf("p1 = %v, want ≈0.3685", got)
	}
	if got := PE2LSH(1, 2); math.Abs(got-0.1954) > 5e-3 {
		t.Errorf("p2 = %v, want ≈0.1954", got)
	}
}

func TestPQueryAwareMonotone(t *testing.T) {
	w := 2.719
	prev := 1.0
	for s := 0.1; s < 20; s += 0.1 {
		p := PQueryAware(w, s)
		if p < 0 || p > 1 || p > prev+1e-12 {
			t.Fatalf("query-aware p broken at %v: %v", s, p)
		}
		prev = p
	}
	// 2Φ(w/2)-1 at s=1.
	want := 2*NormalCDF(2.719/2) - 1
	if got := PQueryAware(2.719, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("p1 = %v, want %v", got, want)
	}
}

func TestHashCountAndThreshold(t *testing.T) {
	// C2LSH-style parameters at n=10000.
	p1 := PE2LSH(1, 1)
	p2 := PE2LSH(1, 2)
	m, l := HashCountAndThreshold(0.01, 1/math.E, p1, p2)
	if m < 100 || m > 300 {
		t.Errorf("C2LSH m = %d, outside the literature range", m)
	}
	if l < 1 || l > m {
		t.Errorf("l = %d outside [1, m=%d]", l, m)
	}
	// The threshold must sit between the two collision rates: l/m in (p2, p1).
	frac := float64(l) / float64(m)
	if frac <= p2 || frac >= p1 {
		t.Errorf("l/m = %v outside (p2=%v, p1=%v)", frac, p2, p1)
	}
	// QALSH needs fewer hash functions than C2LSH (its key advantage).
	q1 := PQueryAware(2.719, 1)
	q2 := PQueryAware(2.719, 2)
	mq, _ := HashCountAndThreshold(0.01, 1/math.E, q1, q2)
	if mq >= m {
		t.Errorf("QALSH m = %d should be below C2LSH m = %d", mq, m)
	}
}

// Property: more separation between p1 and p2 means fewer hash functions.
func TestQuickFewerHashesWithMoreSeparation(t *testing.T) {
	f := func(seed int64) bool {
		p2 := 0.2
		mA, _ := HashCountAndThreshold(0.01, 0.37, 0.5, p2)
		mB, _ := HashCountAndThreshold(0.01, 0.37, 0.7, p2)
		return mB <= mA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleToUnitNN(t *testing.T) {
	// Distances clustered around 10: scale should be ≈ 1/near-quantile.
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = 10 + float64(i%7)
	}
	s := ScaleToUnitNN(sample)
	if s <= 0 || s > 1 {
		t.Errorf("scale = %v", s)
	}
	if got := ScaleToUnitNN(nil); got != 1 {
		t.Errorf("empty sample scale = %v, want 1", got)
	}
	if got := ScaleToUnitNN([]float64{0, 0}); got != 1 {
		t.Errorf("degenerate sample scale = %v, want 1", got)
	}
}
