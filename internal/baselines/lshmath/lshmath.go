// Package lshmath holds the probability machinery shared by the two LSH
// baselines: collision probabilities of 2-stable hash functions and the
// derivation of the number of hash functions m and the collision-count
// threshold l from the target error bounds (β false positives, δ error
// probability) — the formulas C2LSH [26] and QALSH [33] both instantiate.
package lshmath

import "math"

// NormalCDF is Φ(x) for the standard normal distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// PE2LSH returns the collision probability of the E2LSH hash
// h(o) = ⌊(a·o+b)/w⌋ for two points at Euclidean distance s:
// p(s) = 1 - 2Φ(-w/s) - (2s/(√(2π)·w))·(1 - e^{-w²/(2s²)}).
func PE2LSH(w, s float64) float64 {
	if s <= 0 {
		return 1
	}
	t := w / s
	return 1 - 2*NormalCDF(-t) - (2/(math.Sqrt(2*math.Pi)*t))*(1-math.Exp(-t*t/2))
}

// PQueryAware returns the collision probability of QALSH's query-aware
// scheme — |a·o - a·q| ≤ w/2 — for points at distance s:
// p(s) = 2Φ(w/(2s)) - 1.
func PQueryAware(w, s float64) float64 {
	if s <= 0 {
		return 1
	}
	return 2*NormalCDF(w/(2*s)) - 1
}

// HashCountAndThreshold derives (m, l): the number of hash functions and
// the collision-count threshold that make false negatives ≤ δ and false
// positives ≤ β·n, given per-hash collision probabilities p1 (near
// points) and p2 (far points):
//
//	m = ⌈ (√ln(2/β) + √ln(1/δ))² / (2(p1-p2)²) ⌉
//	α = (√ln(2/β)·p1 + √ln(1/δ)·p2) / (√ln(2/β) + √ln(1/δ))
//	l = ⌈α·m⌉
func HashCountAndThreshold(beta, delta, p1, p2 float64) (m, l int) {
	a := math.Sqrt(math.Log(2 / beta))
	b := math.Sqrt(math.Log(1 / delta))
	diff := p1 - p2
	mf := (a + b) * (a + b) / (2 * diff * diff)
	m = int(math.Ceil(mf))
	if m < 1 {
		m = 1
	}
	alpha := (a*p1 + b*p2) / (a + b)
	l = int(math.Ceil(alpha * float64(m)))
	if l < 1 {
		l = 1
	}
	if l > m {
		l = m
	}
	return m, l
}

// ScaleToUnitNN estimates a multiplicative scale that maps typical
// nearest-neighbour distances to ≈1, by sampling pair distances and
// taking a low quantile. The virtual-rehashing radius schedule R = 1, c,
// c², … of both LSH methods assumes distances start around 1 (the
// original implementations ask users to pre-scale floating-point data;
// §5.1 of the HD-Index paper does exactly that).
func ScaleToUnitNN(sample []float64) float64 {
	if len(sample) == 0 {
		return 1
	}
	// nth_element-ish: simple insertion into a small window of the
	// smallest values; sample sizes are tiny (hundreds).
	cp := append([]float64(nil), sample...)
	// take the 5th percentile as the "near" distance
	k := len(cp) / 20
	if k < 1 {
		k = 1
	}
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[min] {
				min = j
			}
		}
		cp[i], cp[min] = cp[min], cp[i]
	}
	near := cp[k-1]
	if near <= 0 {
		return 1
	}
	return 1 / near
}
