// Package opq implements Product Quantization [35] and Optimized Product
// Quantization [27], the quantisation baselines of §5: the feature space
// is split into M subspaces (the paper runs M = 8), each quantised by its
// own 256-centroid codebook; queries are answered by Asymmetric Distance
// Computation (ADC) — one lookup table per subspace, then a linear scan
// over the short codes. OPQ additionally learns an orthogonal rotation R
// that redistributes variance across subspaces (the non-parametric
// alternation of Ge et al.), trading build time for lower quantisation
// error. Both are memory-resident, which is exactly the scalability cost
// Fig. 8's RAM columns capture.
package opq

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/kmeans"
	"github.com/hd-index/hdindex/internal/linalg"
	"github.com/hd-index/hdindex/internal/topk"
)

// Params configures PQ/OPQ.
type Params struct {
	M             int // subspaces (paper: 8); must divide the dimensionality
	K             int // centroids per subspace (default 256, the classic 8-bit code)
	OPQIterations int // rotation-optimisation rounds; 0 = plain PQ
	RerankK       int // if > 0, re-rank the best RerankK candidates with exact distances
	TrainSamples  int // vectors used for codebook training (default min(n, 20000))
	KMeansIters   int // Lloyd iterations per codebook (default 10)
	Seed          int64
}

// Index is a built PQ/OPQ index.
type Index struct {
	params    Params
	dim       int
	subDim    int
	rotated   bool
	rotation  *linalg.Mat   // R, applied to vectors before quantisation
	codebooks [][][]float32 // [M][K][subDim]
	codes     [][]uint16    // [n][M]
	vectors   [][]float32   // retained only if RerankK > 0
	name      string
}

// Build trains codebooks (and the OPQ rotation when OPQIterations > 0)
// and encodes all vectors.
func Build(vectors [][]float32, p Params) (*Index, error) {
	if len(vectors) == 0 {
		return nil, errors.New("opq: empty dataset")
	}
	dim := len(vectors[0])
	if p.M <= 0 {
		p.M = 8
	}
	if dim%p.M != 0 {
		return nil, fmt.Errorf("opq: M = %d does not divide dimensionality %d", p.M, dim)
	}
	if p.K <= 0 {
		p.K = 256
	}
	if p.K > 65536 {
		return nil, fmt.Errorf("opq: K = %d exceeds code width", p.K)
	}
	if p.TrainSamples <= 0 {
		p.TrainSamples = 20000
	}
	if p.KMeansIters <= 0 {
		p.KMeansIters = 10
	}
	rng := rand.New(rand.NewSource(p.Seed))

	ix := &Index{
		params: p,
		dim:    dim,
		subDim: dim / p.M,
		name:   "PQ",
	}
	if p.OPQIterations > 0 {
		ix.name = "OPQ"
		ix.rotated = true
		ix.rotation = linalg.Identity(dim)
	}
	if p.RerankK > 0 {
		ix.vectors = vectors
	}

	// Training sample.
	train := vectors
	if len(vectors) > p.TrainSamples {
		idx := rng.Perm(len(vectors))[:p.TrainSamples]
		train = make([][]float32, len(idx))
		for i, id := range idx {
			train[i] = vectors[id]
		}
	}

	work := rotateAll(ix.rotation, train)
	if err := ix.trainCodebooks(work, rng); err != nil {
		return nil, err
	}

	for iter := 0; iter < p.OPQIterations; iter++ {
		// Non-parametric OPQ alternation: encode, reconstruct, then solve
		// the Procrustes problem R = argmax tr(Rᵀ Σ ŷᵢxᵢᵀ).
		m := linalg.NewMat(dim, dim)
		recon := make([]float64, dim)
		for _, x := range train {
			rx := rotateOne(ix.rotation, x)
			code := ix.encodeRotated(rx)
			for s := 0; s < p.M; s++ {
				c := ix.codebooks[s][code[s]]
				for d, v := range c {
					recon[s*ix.subDim+d] = float64(v)
				}
			}
			for r := 0; r < dim; r++ {
				row := m.Data[r*dim : (r+1)*dim]
				yr := recon[r]
				if yr == 0 {
					continue
				}
				for cIdx, xv := range x {
					row[cIdx] += yr * float64(xv)
				}
			}
		}
		ix.rotation = linalg.Procrustes(m)
		work = rotateAll(ix.rotation, train)
		if err := ix.trainCodebooks(work, rng); err != nil {
			return nil, err
		}
	}

	// Encode the full dataset.
	ix.codes = make([][]uint16, len(vectors))
	for i, v := range vectors {
		ix.codes[i] = ix.encodeRotated(rotateOne(ix.rotation, v))
	}
	return ix, nil
}

func (ix *Index) trainCodebooks(train [][]float32, rng *rand.Rand) error {
	p := ix.params
	ix.codebooks = make([][][]float32, p.M)
	sub := make([][]float32, len(train))
	for s := 0; s < p.M; s++ {
		lo := s * ix.subDim
		for i, v := range train {
			sub[i] = v[lo : lo+ix.subDim]
		}
		km, err := kmeans.Run(sub, p.K, p.KMeansIters, rng)
		if err != nil {
			return err
		}
		ix.codebooks[s] = km.Centroids
	}
	return nil
}

// rotateOne applies R to v; identity and nil rotations short-circuit.
func rotateOne(r *linalg.Mat, v []float32) []float32 {
	if r == nil {
		return v
	}
	out := make([]float32, len(v))
	for i := 0; i < r.Rows; i++ {
		row := r.Data[i*r.Cols : (i+1)*r.Cols]
		var s float64
		for j, x := range row {
			s += x * float64(v[j])
		}
		out[i] = float32(s)
	}
	return out
}

func rotateAll(r *linalg.Mat, vs [][]float32) [][]float32 {
	if r == nil {
		return vs
	}
	out := make([][]float32, len(vs))
	for i, v := range vs {
		out[i] = rotateOne(r, v)
	}
	return out
}

// encodeRotated quantises an already-rotated vector.
func (ix *Index) encodeRotated(v []float32) []uint16 {
	code := make([]uint16, ix.params.M)
	for s := 0; s < ix.params.M; s++ {
		lo := s * ix.subDim
		sub := v[lo : lo+ix.subDim]
		best, bestD := 0, math.Inf(1)
		for c, ctr := range ix.codebooks[s] {
			var d float64
			for i, x := range sub {
				dx := float64(x) - float64(ctr[i])
				d += dx * dx
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		code[s] = uint16(best)
	}
	return code
}

// Name implements baselines.Index.
func (ix *Index) Name() string { return ix.name }

// Search implements baselines.Index via ADC: per-subspace lookup tables,
// then a scan over all codes.
func (ix *Index) Search(q []float32, k int) ([]baselines.Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("opq: query has %d dims, index has %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, errors.New("opq: k must be >= 1")
	}
	rq := rotateOne(ix.rotation, q)

	// Distance tables: table[s][c] = ||q_s - codebook[s][c]||².
	p := ix.params
	tables := make([][]float64, p.M)
	for s := 0; s < p.M; s++ {
		lo := s * ix.subDim
		sub := rq[lo : lo+ix.subDim]
		tbl := make([]float64, len(ix.codebooks[s]))
		for c, ctr := range ix.codebooks[s] {
			var d float64
			for i, x := range sub {
				dx := float64(x) - float64(ctr[i])
				d += dx * dx
			}
			tbl[c] = d
		}
		tables[s] = tbl
	}

	scanK := k
	if p.RerankK > k {
		scanK = p.RerankK
	}
	best := topk.New(scanK)
	for id, code := range ix.codes {
		var d float64
		for s, c := range code {
			d += tables[s][c]
		}
		best.Push(uint64(id), d)
	}
	items := best.Items()

	if p.RerankK > 0 {
		// Exact re-ranking of the short-list.
		rer := topk.New(k)
		for _, it := range items {
			v := ix.vectors[it.ID]
			var d float64
			for i, x := range v {
				dx := float64(q[i]) - float64(x)
				d += dx * dx
			}
			rer.Push(it.ID, d)
		}
		items = rer.Items()
	} else if len(items) > k {
		items = items[:k]
	}

	out := make([]baselines.Result, len(items))
	for i, it := range items {
		out[i] = baselines.Result{ID: it.ID, Dist: math.Sqrt(it.Dist)}
	}
	return out, nil
}

// SizeBytes implements baselines.Index: codes + codebooks (+ rotation),
// all memory-resident.
func (ix *Index) SizeBytes() int64 {
	var sz int64
	sz += int64(len(ix.codes)) * int64(ix.params.M) * 2
	for _, cb := range ix.codebooks {
		sz += int64(len(cb)) * int64(ix.subDim) * 4
	}
	if ix.rotation != nil {
		sz += int64(len(ix.rotation.Data)) * 8
	}
	if ix.vectors != nil {
		sz += int64(len(ix.vectors)) * int64(ix.dim) * 4
	}
	return sz
}

// QuantizationError returns the mean squared reconstruction error over a
// sample — the quantity OPQ's rotation is meant to reduce versus PQ.
func (ix *Index) QuantizationError(vectors [][]float32) float64 {
	var sum float64
	for _, v := range vectors {
		rv := rotateOne(ix.rotation, v)
		code := ix.encodeRotated(rv)
		for s := 0; s < ix.params.M; s++ {
			ctr := ix.codebooks[s][code[s]]
			lo := s * ix.subDim
			for d, x := range ctr {
				dx := float64(rv[lo+d]) - float64(x)
				sum += dx * dx
			}
		}
	}
	return sum / float64(len(vectors))
}

// Close implements baselines.Index.
func (ix *Index) Close() error { return nil }
