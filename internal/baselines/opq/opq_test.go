package opq

import (
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

func TestPQQuality(t *testing.T) {
	ds := data.Generate(data.Config{N: 3000, Dim: 32, Clusters: 8, Lo: 0, Hi: 1, Seed: 1})
	queries := ds.PerturbedQueries(15, 0.01, 2)
	ix, err := Build(ds.Vectors, Params{M: 8, K: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Name() != "PQ" {
		t.Errorf("name = %s", ix.Name())
	}
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	var got [][]uint64
	for _, q := range queries {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		got = append(got, ids)
	}
	if m := metrics.MAP(got, truthIDs, 10); m < 0.25 {
		t.Errorf("PQ MAP@10 = %v, too low for 8x64 codes on clustered data", m)
	}
}

func TestRerankImprovesQuality(t *testing.T) {
	ds := data.Generate(data.Config{N: 2000, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 4})
	queries := ds.PerturbedQueries(15, 0.01, 5)
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	mapOf := func(rerank int) float64 {
		ix, err := Build(ds.Vectors, Params{M: 8, K: 32, RerankK: rerank, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		var got [][]uint64
		for _, q := range queries {
			res, _ := ix.Search(q, 10)
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			got = append(got, ids)
		}
		return metrics.MAP(got, truthIDs, 10)
	}
	plain := mapOf(0)
	reranked := mapOf(100)
	if reranked < plain {
		t.Errorf("rerank MAP %v must be >= ADC-only MAP %v", reranked, plain)
	}
	if reranked < 0.5 {
		t.Errorf("reranked MAP = %v, too low", reranked)
	}
}

// OPQ's learned rotation must not increase quantisation error versus PQ
// (it minimises the same objective with an extra free parameter).
func TestOPQReducesQuantizationError(t *testing.T) {
	// Anisotropic data: one dominant direction, where rotation helps.
	ds := data.Generate(data.Config{N: 1500, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 7})
	for _, v := range ds.Vectors {
		for d := 0; d < 8; d++ {
			v[d] *= 10 // unbalanced variance across subspaces
		}
	}
	pq, err := Build(ds.Vectors, Params{M: 4, K: 16, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	opq, err := Build(ds.Vectors, Params{M: 4, K: 16, OPQIterations: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if opq.Name() != "OPQ" {
		t.Errorf("name = %s", opq.Name())
	}
	sample := ds.Vectors[:300]
	ePQ := pq.QuantizationError(sample)
	eOPQ := opq.QuantizationError(sample)
	if eOPQ > ePQ*1.05 {
		t.Errorf("OPQ error %v should not exceed PQ error %v", eOPQ, ePQ)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build(nil, Params{}); err == nil {
		t.Error("empty dataset must fail")
	}
	ds := data.Uniform(50, 10, 0, 1, 9)
	if _, err := Build(ds.Vectors, Params{M: 3}); err == nil {
		t.Error("M not dividing dim must fail")
	}
	ix, err := Build(ds.Vectors, Params{M: 2, K: 8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(ds.Vectors[0][:3], 1); err == nil {
		t.Error("wrong dims must fail")
	}
	if _, err := ix.Search(ds.Vectors[0], 0); err == nil {
		t.Error("k=0 must fail")
	}
	if ix.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}
