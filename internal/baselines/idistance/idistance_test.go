package idistance

import (
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

// iDistance is an exact method: its results must equal the ground truth.
func TestExactness(t *testing.T) {
	ds := data.Generate(data.Config{N: 2000, Dim: 16, Clusters: 6, Lo: 0, Hi: 1, Seed: 1})
	queries := ds.PerturbedQueries(15, 0.02, 2)
	ix, err := Build(filepath.Join(t.TempDir(), "idist"), ds.Vectors, Params{Clusters: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	truthIDs, truthDists := data.GroundTruth(ds.Vectors, queries, 10)
	for qi, q := range queries {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 10 {
			t.Fatalf("query %d returned %d results", qi, len(res))
		}
		for i, r := range res {
			if r.ID != truthIDs[qi][i] {
				t.Fatalf("query %d rank %d: got id %d (d=%v), want %d (d=%v)",
					qi, i, r.ID, r.Dist, truthIDs[qi][i], truthDists[qi][i])
			}
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build(filepath.Join(t.TempDir(), "x"), nil, Params{}); err == nil {
		t.Error("empty dataset must fail")
	}
	ds := data.Uniform(100, 8, 0, 1, 4)
	ix, err := Build(filepath.Join(t.TempDir(), "y"), ds.Vectors, Params{Clusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.Search(ds.Vectors[0][:3], 5); err == nil {
		t.Error("wrong dims must fail")
	}
	if _, err := ix.Search(ds.Vectors[0], 0); err == nil {
		t.Error("k=0 must fail")
	}
	if ix.Name() != "iDistance" {
		t.Error("name mismatch")
	}
	if ix.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestKLargerThanN(t *testing.T) {
	ds := data.Uniform(20, 4, 0, 1, 5)
	ix, err := Build(filepath.Join(t.TempDir(), "z"), ds.Vectors, Params{Clusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	res, err := ix.Search(ds.Vectors[0], 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatalf("k>n should return n results, got %d", len(res))
	}
}
