// Package idistance implements iDistance [73], the exact kNN baseline of
// §5: data is partitioned around cluster centres; each point is keyed by
// partition id and its distance to the partition centre; keys live in a
// disk B+-tree. A query expands a search radius r (the paper runs r₀ =
// 0.01, Δr = 0.01) probing, per partition, the one-dimensional key range
// its sphere shell intersects, until the k-th best distance is covered —
// at which point the answer is provably exact.
package idistance

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/bptree"
	"github.com/hd-index/hdindex/internal/kmeans"
	"github.com/hd-index/hdindex/internal/pager"
	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
	"github.com/hd-index/hdindex/internal/vecstore"
)

// Params configures iDistance.
type Params struct {
	Clusters  int     // partitions; default max(16, sqrt(n)/2)
	R0        float64 // initial radius (paper: 0.01, scaled by data diameter)
	DeltaR    float64 // radius increment (paper: 0.01, likewise scaled)
	PageSize  int
	PoolPages int
	Seed      int64
}

// Index is a built iDistance index.
type Index struct {
	dir      string
	params   Params
	dim      int
	centers  [][]float32
	radii    []float64 // max distance of any member to its centre
	tree     *bptree.Tree
	treePgr  *pager.Pager
	vectors  *vecstore.Store
	vecPager *pager.Pager
	scale    float64 // converts paper-units (fractions) to absolute radii
}

const keyLen = 12 // [4B partition][8B sortable float distance]

// Build constructs the index in dir.
func Build(dir string, vectors [][]float32, p Params) (*Index, error) {
	if len(vectors) == 0 {
		return nil, errors.New("idistance: empty dataset")
	}
	if p.Clusters <= 0 {
		c := int(math.Sqrt(float64(len(vectors)))) / 2
		if c < 16 {
			c = 16
		}
		if c > len(vectors) {
			c = len(vectors)
		}
		p.Clusters = c
	}
	if p.R0 == 0 {
		p.R0 = 0.01
	}
	if p.DeltaR == 0 {
		p.DeltaR = 0.01
	}
	if p.PageSize == 0 {
		p.PageSize = 4096
	}
	if p.PoolPages == 0 {
		p.PoolPages = 256
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dim := len(vectors[0])

	rng := rand.New(rand.NewSource(p.Seed))
	km, err := kmeans.Run(vectors, p.Clusters, 10, rng)
	if err != nil {
		return nil, err
	}

	ix := &Index{dir: dir, params: p, dim: dim, centers: km.Centroids}
	ix.radii = make([]float64, len(km.Centroids))
	keys := make([][]byte, len(vectors))
	vals := make([][]byte, len(vectors))
	type rec struct {
		key []byte
		val []byte
	}
	recs := make([]rec, len(vectors))
	for i, v := range vectors {
		c := km.Assign[i]
		d := vecmath.Dist(v, km.Centroids[c])
		if d > ix.radii[c] {
			ix.radii[c] = d
		}
		key := make([]byte, keyLen)
		binary.BigEndian.PutUint32(key[0:], uint32(c))
		vecmath.PutSortableFloat64(key[4:], d)
		val := make([]byte, 8)
		binary.BigEndian.PutUint64(val, uint64(i))
		recs[i] = rec{key, val}
	}
	// Sort by key for bulk load.
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i].key, recs[j].key) < 0 })
	for i, r := range recs {
		keys[i], vals[i] = r.key, r.val
	}

	tp, err := pager.Open(filepath.Join(dir, "idist_tree.pg"), pager.Options{
		Create: true, PageSize: p.PageSize, PoolPages: p.PoolPages,
	})
	if err != nil {
		return nil, err
	}
	tree, err := bptree.Create(tp, bptree.Config{KeyLen: keyLen, ValLen: 8})
	if err != nil {
		tp.Close()
		return nil, err
	}
	if err := tree.BulkLoad(&bptree.SliceSource{Keys: keys, Values: vals}); err != nil {
		tp.Close()
		return nil, err
	}
	ix.tree, ix.treePgr = tree, tp

	vp, err := pager.Open(filepath.Join(dir, "idist_vecs.pg"), pager.Options{
		Create: true, PageSize: p.PageSize, PoolPages: p.PoolPages,
	})
	if err != nil {
		tp.Close()
		return nil, err
	}
	vs, err := vecstore.Create(vp, dim)
	if err != nil {
		tp.Close()
		vp.Close()
		return nil, err
	}
	if err := vs.BuildFrom(vectors); err != nil {
		tp.Close()
		vp.Close()
		return nil, err
	}
	ix.vectors, ix.vecPager = vs, vp

	// The paper's r0/Δr of 0.01 are fractions of the data extent; scale
	// by the largest partition radius so the expansion schedule is
	// dataset-independent.
	for _, r := range ix.radii {
		if r > ix.scale {
			ix.scale = r
		}
	}
	if ix.scale == 0 {
		ix.scale = 1
	}
	return ix, nil
}

// Name implements baselines.Index.
func (ix *Index) Name() string { return "iDistance" }

// Search implements baselines.Index. Results are exact.
func (ix *Index) Search(q []float32, k int) ([]baselines.Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("idistance: query has %d dims, index has %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, errors.New("idistance: k must be >= 1")
	}
	nc := len(ix.centers)
	qdist := make([]float64, nc)
	for c, ctr := range ix.centers {
		qdist[c] = vecmath.Dist(q, ctr)
	}

	best := topk.New(k)
	// Per-partition scanned interval [lo, hi) in distance space; nothing
	// scanned yet.
	scannedLo := make([]float64, nc)
	scannedHi := make([]float64, nc)
	for c := range scannedLo {
		scannedLo[c] = math.Inf(1)
		scannedHi[c] = math.Inf(-1)
	}
	vec := make([]float32, ix.dim)

	r := ix.params.R0 * ix.scale
	dr := ix.params.DeltaR * ix.scale
	maxR := 2 * ix.scale // beyond twice the max radius every sphere is covered

	probe := func(c int, lo, hi float64) error {
		if hi <= lo {
			return nil
		}
		loKey := make([]byte, keyLen)
		hiKey := make([]byte, keyLen)
		binary.BigEndian.PutUint32(loKey[0:], uint32(c))
		vecmath.PutSortableFloat64(loKey[4:], lo)
		binary.BigEndian.PutUint32(hiKey[0:], uint32(c))
		vecmath.PutSortableFloat64(hiKey[4:], hi)
		return ix.tree.Scan(loKey, hiKey, func(key, val []byte) bool {
			id := binary.BigEndian.Uint64(val)
			v, err := ix.vectors.Get(id, vec)
			if err != nil {
				return false
			}
			best.Push(id, vecmath.DistSq(q, v))
			return true
		})
	}

	for {
		for c := 0; c < nc; c++ {
			// Shell of partition c the ball B(q, r) intersects.
			lo := qdist[c] - r
			if lo < 0 {
				lo = 0
			}
			hi := qdist[c] + r
			if hi > ix.radii[c] {
				hi = ix.radii[c]
			}
			if lo > hi {
				continue // ball does not reach this partition
			}
			// Scan only the not-yet-visited sub-ranges.
			if scannedLo[c] > scannedHi[c] {
				if err := probe(c, lo, hi); err != nil {
					return nil, err
				}
				scannedLo[c], scannedHi[c] = lo, hi
				continue
			}
			if lo < scannedLo[c] {
				if err := probe(c, lo, math.Nextafter(scannedLo[c], lo)); err != nil {
					return nil, err
				}
				scannedLo[c] = lo
			}
			if hi > scannedHi[c] {
				if err := probe(c, math.Nextafter(scannedHi[c], hi), hi); err != nil {
					return nil, err
				}
				scannedHi[c] = hi
			}
		}
		// Exactness: every point within distance r of q has been seen.
		if bound, ok := best.Bound(); ok && math.Sqrt(bound) <= r {
			break
		}
		if r >= maxR {
			break // everything scanned
		}
		r += dr
	}

	items := best.Items()
	out := make([]baselines.Result, len(items))
	for i, it := range items {
		out[i] = baselines.Result{ID: it.ID, Dist: math.Sqrt(it.Dist)}
	}
	return out, nil
}

// SizeBytes implements baselines.Index.
func (ix *Index) SizeBytes() int64 {
	return ix.treePgr.FileSize() + ix.vecPager.FileSize()
}

// TreeSizeBytes returns the B+-tree size alone (the index proper).
func (ix *Index) TreeSizeBytes() int64 { return ix.treePgr.FileSize() }

// Close implements baselines.Index.
func (ix *Index) Close() error {
	err1 := ix.treePgr.Close()
	err2 := ix.vecPager.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
