package idistance

import (
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

// Exactness must hold regardless of the partition count — the radius
// expansion's stopping rule is what guarantees it, not the clustering.
func TestExactnessAcrossClusterCounts(t *testing.T) {
	ds := data.Generate(data.Config{N: 800, Dim: 12, Clusters: 3, Lo: 0, Hi: 1, Seed: 51})
	queries := ds.PerturbedQueries(8, 0.02, 52)
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 5)
	for _, clusters := range []int{1, 4, 64} {
		ix, err := Build(filepath.Join(t.TempDir(), "id"), ds.Vectors,
			Params{Clusters: clusters, Seed: 53})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			res, err := ix.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range res {
				if r.ID != truthIDs[qi][i] {
					t.Fatalf("clusters=%d query %d rank %d: %d vs %d",
						clusters, qi, i, r.ID, truthIDs[qi][i])
				}
			}
		}
		ix.Close()
	}
}

// A larger initial radius must not change the answers, only the number
// of rounds.
func TestRadiusScheduleIndependence(t *testing.T) {
	ds := data.Uniform(500, 8, 0, 1, 54)
	queries := ds.PerturbedQueries(5, 0.02, 55)
	run := func(r0, dr float64) [][]uint64 {
		ix, err := Build(filepath.Join(t.TempDir(), "id"), ds.Vectors,
			Params{Clusters: 8, R0: r0, DeltaR: dr, Seed: 56})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		var out [][]uint64
		for _, q := range queries {
			res, err := ix.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			out = append(out, ids)
		}
		return out
	}
	a := run(0.01, 0.01)
	b := run(0.2, 0.1)
	for qi := range a {
		for i := range a[qi] {
			if a[qi][i] != b[qi][i] {
				t.Fatalf("radius schedule changed exact results at query %d", qi)
			}
		}
	}
}
