package qalsh

import (
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

func TestRatioAndQuality(t *testing.T) {
	ds := data.Generate(data.Config{N: 4000, Dim: 32, Clusters: 8, Lo: 0, Hi: 1, Seed: 1})
	queries := ds.PerturbedQueries(15, 0.01, 2)
	ix, err := Build(ds.Vectors, Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	truthIDs, truthDists := data.GroundTruth(ds.Vectors, queries, 10)
	var ratioSum float64
	var got [][]uint64
	for qi, q := range queries {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 {
			t.Fatal("no results")
		}
		dists := make([]float64, len(res))
		ids := make([]uint64, len(res))
		for i, r := range res {
			dists[i] = r.Dist
			ids[i] = r.ID
		}
		got = append(got, ids)
		ratioSum += metrics.Ratio(dists, truthDists[qi])
	}
	if ratio := ratioSum / float64(len(queries)); ratio > 2.0 {
		t.Errorf("QALSH mean ratio = %v, beyond its c=2 target", ratio)
	}
	// §5: QALSH is the quality leader among the LSH family; on easy
	// clustered data it should achieve decent MAP.
	if m := metrics.MAP(got, truthIDs, 10); m < 0.2 {
		t.Errorf("QALSH MAP@10 = %v, unexpectedly low", m)
	}
}

// Query-aware hashing needs fewer hash functions than C2LSH's static
// bucketing for the same guarantees (its headline advantage).
func TestFewerHashFunctionsThanC2LSHWouldNeed(t *testing.T) {
	ds := data.Uniform(2000, 16, 0, 1, 4)
	ix, err := Build(ds.Vectors, Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumHashFunctions() > 120 {
		t.Errorf("QALSH m = %d, larger than expected", ix.NumHashFunctions())
	}
	if ix.CollisionThreshold() < 1 || ix.CollisionThreshold() > ix.NumHashFunctions() {
		t.Errorf("l = %d outside [1, m]", ix.CollisionThreshold())
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build(nil, Params{}); err == nil {
		t.Error("empty dataset must fail")
	}
	ds := data.Uniform(200, 8, 0, 1, 6)
	ix, err := Build(ds.Vectors, Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(ds.Vectors[0][:2], 1); err == nil {
		t.Error("wrong dims must fail")
	}
	if _, err := ix.Search(ds.Vectors[0], 0); err == nil {
		t.Error("k=0 must fail")
	}
	if ix.Name() != "QALSH" || ix.SizeBytes() <= 0 {
		t.Error("interface misbehaviour")
	}
}
