// Package qalsh implements QALSH [33] (Huang et al., PVLDB 2015), the
// query-aware LSH baseline of §5: m projections h_j(o) = a_j·o with NO
// pre-quantised buckets — the bucket of width w·R is centred on the
// query's own projection when the query arrives, which is what improves
// accuracy over C2LSH. Collision counting and virtual rehashing follow
// C2LSH; the paper runs c = 2, β = 100/n, δ = 1/e.
package qalsh

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/baselines/lshmath"
	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// Params configures QALSH.
type Params struct {
	C     float64 // approximation ratio (paper: 2)
	W     float64 // bucket width; default 2.719 (QALSH's optimised width for c = 2)
	Beta  float64 // false-positive fraction (paper: 100/n); 0 = auto
	Delta float64 // error probability (paper: 1/e)
	Seed  int64
}

type projTable struct {
	projs []float64 // sorted projections
	ids   []uint32
}

// Index is a built QALSH index.
type Index struct {
	params  Params
	dim     int
	m, l    int
	scale   float64
	a       [][]float64
	tables  []projTable
	vectors [][]float32
}

// Build constructs the index.
func Build(vectors [][]float32, p Params) (*Index, error) {
	if len(vectors) == 0 {
		return nil, errors.New("qalsh: empty dataset")
	}
	n := len(vectors)
	if p.C <= 1 {
		p.C = 2
	}
	if p.W <= 0 {
		p.W = 2.719
	}
	if p.Beta <= 0 {
		p.Beta = 100.0 / float64(n)
		if p.Beta >= 1 {
			p.Beta = 0.5
		}
	}
	if p.Delta <= 0 {
		p.Delta = 1 / math.E
	}
	dim := len(vectors[0])
	rng := rand.New(rand.NewSource(p.Seed))

	p1 := lshmath.PQueryAware(p.W, 1)
	p2 := lshmath.PQueryAware(p.W, p.C)
	m, l := lshmath.HashCountAndThreshold(p.Beta, p.Delta, p1, p2)

	ix := &Index{params: p, dim: dim, m: m, l: l, vectors: vectors}
	// Pre-scale so near-neighbour distances sit around 1 (as the radius
	// schedule R = 1, c, c², ... assumes; see c2lsh).
	samples := 200
	if samples > n-1 {
		samples = n - 1
	}
	dists := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		a, b := vectors[rng.Intn(n)], vectors[rng.Intn(n)]
		if d := vecmath.Dist(a, b); d > 0 {
			dists = append(dists, d)
		}
	}
	ix.scale = lshmath.ScaleToUnitNN(dists)

	ix.a = make([][]float64, m)
	ix.tables = make([]projTable, m)
	for j := 0; j < m; j++ {
		a := make([]float64, dim)
		for d := range a {
			a[d] = rng.NormFloat64()
		}
		ix.a[j] = a
		pt := projTable{projs: make([]float64, n), ids: make([]uint32, n)}
		order := make([]int, n)
		raw := make([]float64, n)
		for i, v := range vectors {
			raw[i] = ix.project(j, v)
			order[i] = i
		}
		sort.Slice(order, func(x, y int) bool { return raw[order[x]] < raw[order[y]] })
		for i, o := range order {
			pt.projs[i] = raw[o]
			pt.ids[i] = uint32(o)
		}
		ix.tables[j] = pt
	}
	return ix, nil
}

func (ix *Index) project(j int, v []float32) float64 {
	var s float64
	for d, x := range v {
		s += ix.a[j][d] * float64(x) * ix.scale
	}
	return s
}

// Name implements baselines.Index.
func (ix *Index) Name() string { return "QALSH" }

// NumHashFunctions exposes m.
func (ix *Index) NumHashFunctions() int { return ix.m }

// CollisionThreshold exposes l.
func (ix *Index) CollisionThreshold() int { return ix.l }

// Search implements baselines.Index with query-centred virtual rehashing.
func (ix *Index) Search(q []float32, k int) ([]baselines.Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("qalsh: query has %d dims, index has %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, errors.New("qalsh: k must be >= 1")
	}
	n := len(ix.vectors)
	p := ix.params

	qproj := make([]float64, ix.m)
	for j := 0; j < ix.m; j++ {
		qproj[j] = ix.project(j, q)
	}
	freq := make([]uint16, n)
	verified := make([]bool, n)
	winLo := make([]int, ix.m)
	winHi := make([]int, ix.m)
	for j := range winLo {
		winLo[j] = -1
	}

	best := topk.New(k)
	maxVerify := k + int(p.Beta*float64(n))
	nVerified := 0

	verify := func(id uint32) {
		if verified[id] {
			return
		}
		verified[id] = true
		nVerified++
		best.Push(uint64(id), vecmath.DistSq(q, ix.vectors[id]))
	}

	radius := 1.0
	const maxRounds = 40
	for round := 0; round < maxRounds; round++ {
		half := p.W * radius / 2
		for j := 0; j < ix.m && nVerified < maxVerify; j++ {
			pt := &ix.tables[j]
			// Query-aware bucket: projections within [q-half, q+half].
			lo := sort.SearchFloat64s(pt.projs, qproj[j]-half)
			hi := sort.SearchFloat64s(pt.projs, qproj[j]+half)
			if winLo[j] == -1 {
				for i := lo; i < hi; i++ {
					id := pt.ids[i]
					freq[id]++
					if int(freq[id]) >= ix.l {
						verify(id)
					}
				}
				winLo[j], winHi[j] = lo, hi
				continue
			}
			for i := lo; i < winLo[j]; i++ {
				id := pt.ids[i]
				freq[id]++
				if int(freq[id]) >= ix.l {
					verify(id)
				}
			}
			for i := winHi[j]; i < hi; i++ {
				id := pt.ids[i]
				freq[id]++
				if int(freq[id]) >= ix.l {
					verify(id)
				}
			}
			if lo < winLo[j] {
				winLo[j] = lo
			}
			if hi > winHi[j] {
				winHi[j] = hi
			}
		}
		if nVerified >= maxVerify {
			break
		}
		if best.Full() {
			bound, _ := best.Bound()
			if math.Sqrt(bound)*ix.scale <= p.C*radius {
				break
			}
		}
		radius *= p.C
	}

	items := best.Items()
	out := make([]baselines.Result, len(items))
	for i, it := range items {
		out[i] = baselines.Result{ID: it.ID, Dist: math.Sqrt(it.Dist)}
	}
	return out, nil
}

// SizeBytes implements baselines.Index: m projection tables of n entries.
func (ix *Index) SizeBytes() int64 {
	return int64(ix.m) * int64(len(ix.vectors)) * 12 // 8B proj + 4B id
}

// Close implements baselines.Index.
func (ix *Index) Close() error { return nil }
