// Package baselines defines the common contract for the seven comparison
// methods of §5 (iDistance, Multicurves, C2LSH, QALSH, SRS, OPQ, HNSW and
// the linear scan). Each lives in its own subpackage; the benchmark
// harness drives them through this interface.
package baselines

// Result is one returned neighbour.
type Result struct {
	ID   uint64
	Dist float64
}

// Index is a built kANN index that can answer queries.
type Index interface {
	// Name returns the method's display name as used in the paper.
	Name() string
	// Search returns the (approximate) k nearest neighbours of q,
	// nearest first.
	Search(q []float32, k int) ([]Result, error)
	// SizeBytes reports the index footprint: file bytes for disk-based
	// methods, estimated heap bytes for memory-based ones.
	SizeBytes() int64
	// Close releases resources.
	Close() error
}
