package multicurves

import (
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

// More curve-scan budget must never hurt quality: alpha is a strict
// superset relation on the candidate sets.
func TestAlphaMonotonicity(t *testing.T) {
	ds := data.Generate(data.Config{N: 1500, Dim: 16, Clusters: 5, Lo: 0, Hi: 1, Seed: 41})
	queries := ds.PerturbedQueries(10, 0.02, 42)
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	mapAt := func(alpha int) float64 {
		ix, err := Build(filepath.Join(t.TempDir(), "mc"), ds.Vectors,
			Params{Tau: 2, Omega: 8, Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		var got [][]uint64
		for _, q := range queries {
			res, err := ix.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			got = append(got, ids)
		}
		return metrics.MAP(got, truthIDs, 10)
	}
	small := mapAt(32)
	large := mapAt(512)
	if large < small {
		t.Errorf("alpha=512 MAP %v below alpha=32 MAP %v", large, small)
	}
	if large < 0.8 {
		t.Errorf("alpha=512 MAP %v too low on n=1500", large)
	}
}

// Duplicate vectors must not confuse the leaf-resident descriptors:
// every duplicate is retrievable as a distinct id.
func TestDuplicateVectors(t *testing.T) {
	base := data.Uniform(50, 8, 0, 1, 43)
	vecs := append([][]float32{}, base.Vectors...)
	vecs = append(vecs, base.Vectors[7], base.Vectors[7]) // ids 50, 51
	ix, err := Build(filepath.Join(t.TempDir(), "mc"), vecs, Params{Tau: 2, Omega: 8, Alpha: 52})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	res, err := ix.Search(base.Vectors[7], 3)
	if err != nil {
		t.Fatal(err)
	}
	zeroDist := 0
	for _, r := range res {
		if r.Dist == 0 {
			zeroDist++
		}
	}
	if zeroDist != 3 {
		t.Errorf("expected 3 zero-distance results for a triplicated point, got %d", zeroDist)
	}
}
