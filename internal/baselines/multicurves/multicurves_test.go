package multicurves

import (
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

func TestQualityOnClusteredData(t *testing.T) {
	ds := data.Generate(data.Config{N: 2000, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 1})
	queries := ds.PerturbedQueries(10, 0.01, 2)
	ix, err := Build(filepath.Join(t.TempDir(), "mc"), ds.Vectors,
		Params{Tau: 4, Omega: 8, Alpha: 512, PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	var got [][]uint64
	for _, q := range queries {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		got = append(got, ids)
	}
	if m := metrics.MAP(got, truthIDs, 10); m < 0.6 {
		t.Errorf("MAP@10 = %v, expected >= 0.6 with alpha=512 on n=2000", m)
	}
}

// With alpha >= n and one curve the scan is exhaustive, hence exact.
func TestExhaustiveAlphaIsExact(t *testing.T) {
	ds := data.Generate(data.Config{N: 300, Dim: 8, Lo: 0, Hi: 1, Seed: 3})
	queries := ds.PerturbedQueries(5, 0.02, 4)
	ix, err := Build(filepath.Join(t.TempDir(), "mc"), ds.Vectors,
		Params{Tau: 1, Omega: 8, Alpha: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 5)
	for qi, q := range queries {
		res, err := ix.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.ID != truthIDs[qi][i] {
				t.Fatalf("query %d rank %d mismatch", qi, i)
			}
		}
	}
}

// SUN-like dimensionality must be rejected ("NP" in Table 5): a 512-dim
// descriptor cannot fit a 4 KB leaf.
func TestHighDimNotPossible(t *testing.T) {
	ds := data.Generate(data.Config{N: 50, Dim: 512, Clusters: 2, Lo: 0, Hi: 1, Seed: 5})
	_, err := Build(filepath.Join(t.TempDir(), "mc"), ds.Vectors,
		Params{Tau: 16, Omega: 32, PageSize: 4096})
	if err == nil {
		t.Fatal("512-dim descriptors must be rejected at 4 KB pages")
	}
}

func TestIndexSizeGrowsWithTau(t *testing.T) {
	ds := data.Generate(data.Config{N: 500, Dim: 32, Lo: 0, Hi: 1, Seed: 6})
	ix2, err := Build(filepath.Join(t.TempDir(), "a"), ds.Vectors, Params{Tau: 2, Omega: 8, Alpha: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	ix4, err := Build(filepath.Join(t.TempDir(), "b"), ds.Vectors, Params{Tau: 4, Omega: 8, Alpha: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ix4.Close()
	if ix4.SizeBytes() <= ix2.SizeBytes() {
		t.Errorf("tau=4 size %d should exceed tau=2 size %d (full descriptors per curve)",
			ix4.SizeBytes(), ix2.SizeBytes())
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	ds := data.Generate(data.Config{N: 800, Dim: 16, Lo: 0, Hi: 1, Seed: 7})
	queries := ds.PerturbedQueries(5, 0.02, 8)
	ix, err := Build(filepath.Join(t.TempDir(), "mc"), ds.Vectors, Params{Tau: 4, Omega: 8, Alpha: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, q := range queries {
		ix.params.Parallel = false
		seq, err := ix.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		ix.params.Parallel = true
		par, err := ix.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatal("parallel differs from sequential")
			}
		}
	}
}

func TestValidation(t *testing.T) {
	ds := data.Uniform(50, 9, 0, 1, 9)
	if _, err := Build(filepath.Join(t.TempDir(), "v"), ds.Vectors, Params{Tau: 4}); err == nil {
		t.Error("tau not dividing dim must fail")
	}
	if _, err := Build(filepath.Join(t.TempDir(), "v2"), nil, Params{}); err == nil {
		t.Error("empty dataset must fail")
	}
}
