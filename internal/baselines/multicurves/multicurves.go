// Package multicurves implements Multicurves [66] (Valle et al., CIKM
// 2008), the space-filling-curve baseline of §5: τ Hilbert curves, each
// responsible for a disjoint subset of the dimensions, each indexed by a
// B+-tree. Unlike the RDB-tree, a Multicurves leaf stores the *complete
// object descriptor*, which avoids random accesses at query time but
// multiplies the index size by τ — the trait that stops it scaling
// (≈1.2 TB for SIFT100M in §5.4.3, and "NP" for SUN because a 512-d
// descriptor plus key exceeds what a 4 KB leaf can hold usefully).
package multicurves

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/bptree"
	"github.com/hd-index/hdindex/internal/hilbert"
	"github.com/hd-index/hdindex/internal/pager"
	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// Params configures Multicurves; the paper runs τ = 8, α = 4096.
type Params struct {
	Tau       int // number of curves (must divide ν)
	Omega     int // Hilbert order
	Alpha     int // candidates retrieved per curve
	PageSize  int
	PoolPages int
	Parallel  bool
}

// Index is a built Multicurves index.
type Index struct {
	dir    string
	params Params
	dim    int
	eta    int
	lo, hi []float32
	curves []*hilbert.Hilbert
	quants []*hilbert.Quantizer
	trees  []*bptree.Tree
	pagers []*pager.Pager
}

// Build constructs the index in dir.
func Build(dir string, vectors [][]float32, p Params) (*Index, error) {
	if len(vectors) == 0 {
		return nil, errors.New("multicurves: empty dataset")
	}
	dim := len(vectors[0])
	if p.Tau <= 0 {
		p.Tau = 8
	}
	if dim%p.Tau != 0 {
		return nil, fmt.Errorf("multicurves: tau %d does not divide dimensionality %d", p.Tau, dim)
	}
	if p.Omega == 0 {
		p.Omega = 8
	}
	if p.Alpha == 0 {
		p.Alpha = 4096
	}
	if p.PageSize == 0 {
		p.PageSize = 4096
	}
	if p.PoolPages == 0 {
		p.PoolPages = 256
	}
	eta := dim / p.Tau
	keyLen := (eta*p.Omega + 7) / 8
	valLen := 8 + 4*dim // id + full descriptor: the Multicurves design
	if 2*(keyLen+valLen) > p.PageSize-19 {
		// Fewer than two descriptors per leaf page makes the tree
		// degenerate; the paper marks these datasets "NP" — index
		// construction not possible due to an inherent limitation
		// (SUN's 512-d and Enron's 1369-d descriptors at 4 KB pages).
		return nil, fmt.Errorf("multicurves: %d-dim descriptors do not fit a %d-byte page (NP)", dim, p.PageSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	lo, hi := vecmath.MinMax(vectors, dim)
	ix := &Index{dir: dir, params: p, dim: dim, eta: eta, lo: lo, hi: hi}
	ix.curves = make([]*hilbert.Hilbert, p.Tau)
	ix.quants = make([]*hilbert.Quantizer, p.Tau)
	ix.trees = make([]*bptree.Tree, p.Tau)
	ix.pagers = make([]*pager.Pager, p.Tau)

	errs := make([]error, p.Tau)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for t := 0; t < p.Tau; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[t] = ix.buildCurve(t, vectors, keyLen, valLen)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			ix.Close()
			return nil, err
		}
	}
	return ix, nil
}

func (ix *Index) buildCurve(t int, vectors [][]float32, keyLen, valLen int) error {
	p := ix.params
	curve, err := hilbert.New(ix.eta, p.Omega)
	if err != nil {
		return err
	}
	start := t * ix.eta
	quant := hilbert.NewQuantizer(ix.lo[start:start+ix.eta], ix.hi[start:start+ix.eta], p.Omega)

	type rec struct {
		key []byte
		val []byte
	}
	recs := make([]rec, len(vectors))
	coords := make([]uint32, ix.eta)
	for id, v := range vectors {
		quant.Coords(coords, v[start:start+ix.eta])
		val := make([]byte, valLen)
		binary.BigEndian.PutUint64(val[0:8], uint64(id))
		for d, x := range v {
			binary.LittleEndian.PutUint32(val[8+4*d:], math.Float32bits(x))
		}
		recs[id] = rec{key: curve.Encode(nil, coords), val: val}
	}
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i].key, recs[j].key) < 0 })
	keys := make([][]byte, len(recs))
	vals := make([][]byte, len(recs))
	for i, r := range recs {
		keys[i], vals[i] = r.key, r.val
	}

	pgr, err := pager.Open(filepath.Join(ix.dir, fmt.Sprintf("mc_%02d.pg", t)), pager.Options{
		Create: true, PageSize: p.PageSize, PoolPages: p.PoolPages,
	})
	if err != nil {
		return err
	}
	tree, err := bptree.Create(pgr, bptree.Config{KeyLen: keyLen, ValLen: valLen})
	if err != nil {
		pgr.Close()
		return err
	}
	if err := tree.BulkLoad(&bptree.SliceSource{Keys: keys, Values: vals}); err != nil {
		pgr.Close()
		return err
	}
	ix.curves[t], ix.quants[t] = curve, quant
	ix.trees[t], ix.pagers[t] = tree, pgr
	return nil
}

// Name implements baselines.Index.
func (ix *Index) Name() string { return "Multicurves" }

// Search implements baselines.Index: per curve, retrieve the α entries
// nearest in key order, compute exact distances from the leaf-resident
// descriptors, and merge.
func (ix *Index) Search(q []float32, k int) ([]baselines.Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("multicurves: query has %d dims, index has %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, errors.New("multicurves: k must be >= 1")
	}
	p := ix.params
	type treeOut struct {
		items []topk.Item
		err   error
	}
	outs := make([]treeOut, p.Tau)
	run := func(t int) {
		outs[t].items, outs[t].err = ix.searchCurve(t, q, k)
	}
	if p.Parallel && p.Tau > 1 {
		var wg sync.WaitGroup
		for t := 0; t < p.Tau; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				run(t)
			}(t)
		}
		wg.Wait()
	} else {
		for t := 0; t < p.Tau; t++ {
			run(t)
		}
	}
	best := topk.New(k)
	seen := make(map[uint64]struct{})
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		for _, it := range o.items {
			if _, dup := seen[it.ID]; dup {
				continue
			}
			seen[it.ID] = struct{}{}
			best.Push(it.ID, it.Dist)
		}
	}
	items := best.Items()
	res := make([]baselines.Result, len(items))
	for i, it := range items {
		res[i] = baselines.Result{ID: it.ID, Dist: math.Sqrt(it.Dist)}
	}
	return res, nil
}

// searchCurve walks outward from the query key position on curve t and
// returns the k best candidates among the α scanned, with squared
// distances.
func (ix *Index) searchCurve(t int, q []float32, k int) ([]topk.Item, error) {
	p := ix.params
	start := t * ix.eta
	coords := make([]uint32, ix.eta)
	ix.quants[t].Coords(coords, q[start:start+ix.eta])
	key := ix.curves[t].Encode(nil, coords)

	right := ix.trees[t].NewCursor()
	defer right.Close()
	if err := right.Seek(key); err != nil {
		return nil, err
	}
	left, err := right.Clone()
	if err != nil {
		return nil, err
	}
	defer left.Close()
	if left.Valid() {
		if err := left.Prev(); err != nil {
			return nil, err
		}
	} else if err := left.Last(); err != nil {
		return nil, err
	}

	best := topk.New(k)
	vec := make([]float32, ix.dim)
	dl := make([]byte, len(key))
	dr := make([]byte, len(key))
	consume := func(val []byte) {
		id := binary.BigEndian.Uint64(val[0:8])
		for d := range vec {
			vec[d] = math.Float32frombits(binary.LittleEndian.Uint32(val[8+4*d:]))
		}
		best.Push(id, vecmath.DistSq(q, vec))
	}
	for n := 0; n < p.Alpha && (left.Valid() || right.Valid()); n++ {
		takeRight := false
		switch {
		case !left.Valid():
			takeRight = true
		case !right.Valid():
			takeRight = false
		default:
			hilbert.KeyDelta(dl, key, left.Key())
			hilbert.KeyDelta(dr, key, right.Key())
			takeRight = bytes.Compare(dr, dl) <= 0
		}
		if takeRight {
			consume(right.Value())
			if err := right.Next(); err != nil {
				return nil, err
			}
		} else {
			consume(left.Value())
			if err := left.Prev(); err != nil {
				return nil, err
			}
		}
	}
	return best.Items(), nil
}

// SizeBytes implements baselines.Index: τ full copies of the dataset
// plus tree overhead — Multicurves' scalability weakness.
func (ix *Index) SizeBytes() int64 {
	var total int64
	for _, pgr := range ix.pagers {
		if pgr != nil {
			total += pgr.FileSize()
		}
	}
	return total
}

// Close implements baselines.Index.
func (ix *Index) Close() error {
	var first error
	for _, pgr := range ix.pagers {
		if pgr != nil {
			if err := pgr.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
