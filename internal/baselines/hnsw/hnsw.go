// Package hnsw implements Hierarchical Navigable Small World graphs [48]
// (Malkov & Yashunin), the in-memory graph baseline of §5. The paper runs
// it with M = 10 neighbours and tunes efSearch so its MAP matches
// HD-Index; its weakness in the comparison is main-memory footprint
// (1.43 GB for SIFT1M), which is what the Fig. 8 RAM columns show.
package hnsw

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// Params configures graph construction and search.
type Params struct {
	M              int // neighbours per node above layer 0 (paper: 10)
	EfConstruction int // beam width during construction (default 100)
	EfSearch       int // beam width during search (default 64)
	Seed           int64
}

// Index is a built HNSW graph over an in-memory dataset.
type Index struct {
	params  Params
	vectors [][]float32
	dim     int
	levelML float64

	mu     sync.RWMutex
	layers [][][]uint32 // layers[l][node] = neighbour ids; nodes absent from layer l have nil
	levels []int        // top layer of each node
	entry  uint32
	maxL   int
	rng    *rand.Rand
}

// Build constructs the graph by sequential insertion.
func Build(vectors [][]float32, p Params) (*Index, error) {
	if len(vectors) == 0 {
		return nil, errors.New("hnsw: empty dataset")
	}
	if p.M <= 1 {
		p.M = 10
	}
	if p.EfConstruction <= 0 {
		p.EfConstruction = 100
	}
	if p.EfSearch <= 0 {
		p.EfSearch = 64
	}
	ix := &Index{
		params:  p,
		vectors: vectors,
		dim:     len(vectors[0]),
		levelML: 1.0 / math.Log(float64(p.M)),
		levels:  make([]int, len(vectors)),
		rng:     rand.New(rand.NewSource(p.Seed)),
	}
	for id := range vectors {
		ix.insert(uint32(id))
	}
	return ix, nil
}

func (ix *Index) dist(a, b uint32) float64 {
	return vecmath.DistSq(ix.vectors[a], ix.vectors[b])
}

func (ix *Index) distQ(q []float32, id uint32) float64 {
	return vecmath.DistSq(q, ix.vectors[id])
}

func (ix *Index) randomLevel() int {
	return int(-math.Log(ix.rng.Float64()+1e-18) * ix.levelML)
}

func (ix *Index) neighbors(l int, id uint32) []uint32 {
	if l >= len(ix.layers) {
		return nil
	}
	return ix.layers[l][id]
}

func (ix *Index) maxNeighbors(l int) int {
	if l == 0 {
		return 2 * ix.params.M
	}
	return ix.params.M
}

func (ix *Index) insert(id uint32) {
	level := ix.randomLevel()
	ix.levels[id] = level
	for len(ix.layers) <= level {
		ix.layers = append(ix.layers, make([][]uint32, len(ix.vectors)))
	}
	if id == 0 {
		ix.entry = 0
		ix.maxL = level
		return
	}

	q := ix.vectors[id]
	ep := ix.entry
	// Greedy descent through layers above the insertion level.
	for l := ix.maxL; l > level; l-- {
		ep = ix.greedyStep(q, ep, l)
	}
	// Beam search + connect at each layer from min(level, maxL) down.
	topIn := level
	if topIn > ix.maxL {
		topIn = ix.maxL
	}
	for l := topIn; l >= 0; l-- {
		cands := ix.searchLayer(q, ep, ix.params.EfConstruction, l)
		selected := ix.selectHeuristic(q, cands, ix.params.M)
		ix.layers[l][id] = selected
		for _, nb := range selected {
			ix.layers[l][nb] = append(ix.layers[l][nb], id)
			if maxN := ix.maxNeighbors(l); len(ix.layers[l][nb]) > maxN {
				ix.shrink(l, nb, maxN)
			}
		}
		if len(cands) > 0 {
			ep = cands[0].id
		}
	}
	if level > ix.maxL {
		ix.maxL = level
		ix.entry = id
	}
}

// shrink prunes node nb's neighbour list at layer l to maxN using the
// same diversity heuristic as construction.
func (ix *Index) shrink(l int, nb uint32, maxN int) {
	ns := ix.layers[l][nb]
	cands := make([]cand, len(ns))
	for i, x := range ns {
		cands[i] = cand{id: x, d: ix.dist(nb, x)}
	}
	sortCands(cands)
	ix.layers[l][nb] = ix.selectHeuristic(ix.vectors[nb], cands, maxN)
}

type cand struct {
	id uint32
	d  float64
}

func sortCands(cs []cand) {
	// insertion sort: candidate lists are short (<= ef)
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].d < cs[j-1].d; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// greedyStep walks from ep to the locally nearest node to q at layer l.
func (ix *Index) greedyStep(q []float32, ep uint32, l int) uint32 {
	cur := ep
	curD := ix.distQ(q, cur)
	for {
		improved := false
		for _, nb := range ix.neighbors(l, cur) {
			if d := ix.distQ(q, nb); d < curD {
				cur, curD = nb, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is Algorithm 2 of the HNSW paper: beam search with beam
// width ef at layer l, returning candidates sorted by distance.
func (ix *Index) searchLayer(q []float32, ep uint32, ef, l int) []cand {
	visited := map[uint32]struct{}{ep: {}}
	epD := ix.distQ(q, ep)
	// candidates: min-heap by d (slice with manual sift; sizes are small)
	candidates := []cand{{ep, epD}}
	// results: max-heap semantics via topk
	results := topk.New(ef)
	results.Push(uint64(ep), epD)

	for len(candidates) > 0 {
		// pop nearest candidate
		bi := 0
		for i := 1; i < len(candidates); i++ {
			if candidates[i].d < candidates[bi].d {
				bi = i
			}
		}
		c := candidates[bi]
		candidates[bi] = candidates[len(candidates)-1]
		candidates = candidates[:len(candidates)-1]

		if bound, ok := results.Bound(); ok && c.d > bound {
			break
		}
		for _, nb := range ix.neighbors(l, c.id) {
			if _, seen := visited[nb]; seen {
				continue
			}
			visited[nb] = struct{}{}
			d := ix.distQ(q, nb)
			if bound, ok := results.Bound(); !ok || d < bound {
				candidates = append(candidates, cand{nb, d})
				results.Push(uint64(nb), d)
			}
		}
	}
	items := results.Items()
	out := make([]cand, len(items))
	for i, it := range items {
		out[i] = cand{uint32(it.ID), it.Dist}
	}
	return out
}

// selectHeuristic is Algorithm 4 of the HNSW paper: prefer diverse
// neighbours — candidate e joins only if it is closer to q than to every
// already-selected neighbour.
func (ix *Index) selectHeuristic(q []float32, cands []cand, m int) []uint32 {
	selected := make([]uint32, 0, m)
	var discarded []cand
	for _, c := range cands {
		if len(selected) >= m {
			break
		}
		ok := true
		for _, s := range selected {
			if ix.dist(c.id, s) < c.d {
				ok = false
				break
			}
		}
		if ok {
			selected = append(selected, c.id)
		} else {
			discarded = append(discarded, c)
		}
	}
	for _, c := range discarded {
		if len(selected) >= m {
			break
		}
		selected = append(selected, c.id)
	}
	return selected
}

// Name implements baselines.Index.
func (ix *Index) Name() string { return "HNSW" }

// Search implements baselines.Index.
func (ix *Index) Search(q []float32, k int) ([]baselines.Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("hnsw: query has %d dims, index has %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, errors.New("hnsw: k must be >= 1")
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ep := ix.entry
	for l := ix.maxL; l > 0; l-- {
		ep = ix.greedyStep(q, ep, l)
	}
	ef := ix.params.EfSearch
	if ef < k {
		ef = k
	}
	cands := ix.searchLayer(q, ep, ef, 0)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]baselines.Result, len(cands))
	for i, c := range cands {
		out[i] = baselines.Result{ID: uint64(c.id), Dist: math.Sqrt(c.d)}
	}
	return out, nil
}

// SizeBytes implements baselines.Index: the in-memory graph plus the
// vectors it must keep resident — HNSW's scalability cost in Fig. 8.
func (ix *Index) SizeBytes() int64 {
	var links int64
	for _, layer := range ix.layers {
		for _, ns := range layer {
			links += int64(len(ns))
		}
	}
	vecBytes := int64(len(ix.vectors)) * int64(ix.dim) * 4
	return vecBytes + links*4 + int64(len(ix.levels))*8
}

// Close implements baselines.Index.
func (ix *Index) Close() error { return nil }
