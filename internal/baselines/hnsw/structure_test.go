package hnsw

import (
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

// The layer assignment must follow the exponential distribution: layer
// populations shrink geometrically (roughly by factor M) and the top
// layers hold a handful of nodes — the "hierarchy" in HNSW.
func TestLayerDistribution(t *testing.T) {
	ds := data.Uniform(4000, 8, 0, 1, 31)
	ix, err := Build(ds.Vectors, Params{M: 8, EfConstruction: 40, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, ix.maxL+1)
	for _, lvl := range ix.levels {
		for l := 0; l <= lvl; l++ {
			counts[l]++
		}
	}
	if counts[0] != 4000 {
		t.Fatalf("layer 0 holds %d nodes, want all 4000", counts[0])
	}
	if ix.maxL < 1 {
		t.Fatal("expected a multi-layer graph at n=4000")
	}
	// Each layer must be markedly smaller than the one below.
	for l := 1; l <= ix.maxL; l++ {
		if counts[l] >= counts[l-1] {
			t.Fatalf("layer %d (%d) not smaller than layer %d (%d)",
				l, counts[l], l-1, counts[l-1])
		}
	}
	// Expected layer-1 population ≈ n/M; allow generous slack.
	if counts[1] > 4000/2 || counts[1] < 4000/64 {
		t.Errorf("layer 1 population %d far from n/M = %d", counts[1], 4000/8)
	}
}

// Degree bounds: no node may exceed 2M neighbours at layer 0 or M above.
func TestDegreeBounds(t *testing.T) {
	ds := data.Uniform(2000, 8, 0, 1, 33)
	p := Params{M: 6, EfConstruction: 40, Seed: 34}
	ix, err := Build(ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	for l, layer := range ix.layers {
		maxN := p.M
		if l == 0 {
			maxN = 2 * p.M
		}
		for id, ns := range layer {
			if len(ns) > maxN {
				t.Fatalf("node %d layer %d degree %d > %d", id, l, len(ns), maxN)
			}
		}
	}
}

// The graph must be connected enough that every node is reachable as its
// own nearest neighbour (self-recall = 1 is the standard HNSW sanity
// check at moderate ef).
func TestSelfRecall(t *testing.T) {
	ds := data.Uniform(1000, 8, 0, 1, 35)
	ix, err := Build(ds.Vectors, Params{M: 8, EfConstruction: 60, EfSearch: 40, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for i := 0; i < 200; i++ {
		res, err := ix.Search(ds.Vectors[i*5], 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].ID != uint64(i*5) {
			misses++
		}
	}
	if misses > 4 { // 98% self-recall
		t.Errorf("self-recall misses = %d/200", misses)
	}
}
