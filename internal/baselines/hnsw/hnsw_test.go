package hnsw

import (
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

func TestRecallOnClusteredData(t *testing.T) {
	ds := data.Generate(data.Config{N: 3000, Dim: 32, Clusters: 8, Lo: 0, Hi: 1, Seed: 1})
	queries := ds.PerturbedQueries(20, 0.01, 2)
	ix, err := Build(ds.Vectors, Params{M: 10, EfConstruction: 100, EfSearch: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	var got [][]uint64
	for _, q := range queries {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 10 {
			t.Fatalf("returned %d", len(res))
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		got = append(got, ids)
		// Sorted by distance.
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				t.Fatal("results not sorted")
			}
		}
	}
	if m := metrics.MAP(got, truthIDs, 10); m < 0.85 {
		t.Errorf("HNSW MAP@10 = %v, expected >= 0.85 at ef=80", m)
	}
}

func TestHigherEfImprovesOrMaintainsQuality(t *testing.T) {
	ds := data.Generate(data.Config{N: 2000, Dim: 24, Clusters: 6, Lo: 0, Hi: 1, Seed: 4})
	queries := ds.PerturbedQueries(15, 0.02, 5)
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	mapAt := func(ef int) float64 {
		ix, err := Build(ds.Vectors, Params{M: 8, EfConstruction: 80, EfSearch: ef, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		var got [][]uint64
		for _, q := range queries {
			res, _ := ix.Search(q, 10)
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			got = append(got, ids)
		}
		return metrics.MAP(got, truthIDs, 10)
	}
	low := mapAt(10)
	high := mapAt(120)
	if high+0.02 < low {
		t.Errorf("ef=120 MAP %v should not be below ef=10 MAP %v", high, low)
	}
}

func TestValidationAndInterface(t *testing.T) {
	if _, err := Build(nil, Params{}); err == nil {
		t.Error("empty dataset must fail")
	}
	ds := data.Uniform(50, 8, 0, 1, 7)
	ix, err := Build(ds.Vectors, Params{M: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(ds.Vectors[0][:2], 1); err == nil {
		t.Error("wrong dims must fail")
	}
	if _, err := ix.Search(ds.Vectors[0], 0); err == nil {
		t.Error("k=0 must fail")
	}
	if ix.Name() != "HNSW" || ix.SizeBytes() <= 0 {
		t.Error("interface misbehaviour")
	}
	// Exact self-query: the point itself must rank first.
	res, err := ix.Search(ds.Vectors[17], 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 17 || res[0].Dist != 0 {
		t.Errorf("self query = %+v", res[0])
	}
}

func TestSingleElement(t *testing.T) {
	ix, err := Build([][]float32{{1, 2}}, Params{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search([]float32{1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 0 {
		t.Fatalf("res = %v", res)
	}
}
