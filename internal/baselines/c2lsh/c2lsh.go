// Package c2lsh implements C2LSH [26] (Gan et al., SIGMOD 2012), the
// collision-counting LSH baseline of §5: m E2LSH hash functions, no
// composite hash tables; a point becomes a candidate once it collides
// with the query in at least l of the m functions, with "virtual
// rehashing" widening buckets by the approximation ratio c each round
// (R = 1, c, c², …). The paper runs c = 2, w = 1, β = 100/n, δ = 1/e.
package c2lsh

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/baselines/lshmath"
	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// Params configures C2LSH.
type Params struct {
	C     float64 // approximation ratio (paper: 2)
	W     float64 // bucket width (paper: 1)
	Beta  float64 // false-positive fraction (paper: 100/n); 0 = auto
	Delta float64 // error probability (paper: 1/e)
	Seed  int64
}

type hashTable struct {
	// parallel slices sorted by hash value
	hashes []int64
	ids    []uint32
}

// Index is a built C2LSH index.
type Index struct {
	params  Params
	dim     int
	m, l    int
	scale   float64
	a       [][]float64 // m × ν projection vectors
	b       []float64   // m offsets
	tables  []hashTable
	vectors [][]float32
}

// Build constructs the index.
func Build(vectors [][]float32, p Params) (*Index, error) {
	if len(vectors) == 0 {
		return nil, errors.New("c2lsh: empty dataset")
	}
	n := len(vectors)
	if p.C <= 1 {
		p.C = 2
	}
	if p.W <= 0 {
		p.W = 1
	}
	if p.Beta <= 0 {
		p.Beta = 100.0 / float64(n)
		if p.Beta >= 1 {
			p.Beta = 0.5
		}
	}
	if p.Delta <= 0 {
		p.Delta = 1 / math.E
	}
	dim := len(vectors[0])
	rng := rand.New(rand.NewSource(p.Seed))

	p1 := lshmath.PE2LSH(p.W, 1)
	p2 := lshmath.PE2LSH(p.W, p.C)
	m, l := lshmath.HashCountAndThreshold(p.Beta, p.Delta, p1, p2)

	ix := &Index{params: p, dim: dim, m: m, l: l, vectors: vectors}
	ix.scale = dataScale(vectors, rng)

	ix.a = make([][]float64, m)
	ix.b = make([]float64, m)
	ix.tables = make([]hashTable, m)
	for j := 0; j < m; j++ {
		a := make([]float64, dim)
		for d := range a {
			a[d] = rng.NormFloat64()
		}
		ix.a[j] = a
		ix.b[j] = rng.Float64() * p.W

		ht := hashTable{
			hashes: make([]int64, n),
			ids:    make([]uint32, n),
		}
		order := make([]int, n)
		for i, v := range vectors {
			ht.hashes[i] = ix.hash(j, v)
			order[i] = i
		}
		sort.Slice(order, func(x, y int) bool { return ht.hashes[order[x]] < ht.hashes[order[y]] })
		sortedH := make([]int64, n)
		for i, o := range order {
			sortedH[i] = ht.hashes[o]
			ht.ids[i] = uint32(o)
		}
		ht.hashes = sortedH
		ix.tables[j] = ht
	}
	return ix, nil
}

// dataScale estimates the factor mapping near-neighbour distances to ≈1
// (the pre-scaling the original implementation requires for float data).
func dataScale(vectors [][]float32, rng *rand.Rand) float64 {
	n := len(vectors)
	samples := 200
	if samples > n-1 {
		samples = n - 1
	}
	dists := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		a := vectors[rng.Intn(n)]
		b := vectors[rng.Intn(n)]
		if d := vecmath.Dist(a, b); d > 0 {
			dists = append(dists, d)
		}
	}
	return lshmath.ScaleToUnitNN(dists)
}

func (ix *Index) hash(j int, v []float32) int64 {
	var s float64
	for d, x := range v {
		s += ix.a[j][d] * float64(x) * ix.scale
	}
	return int64(math.Floor((s + ix.b[j]) / ix.params.W))
}

// Name implements baselines.Index.
func (ix *Index) Name() string { return "C2LSH" }

// NumHashFunctions exposes m for tests and reports.
func (ix *Index) NumHashFunctions() int { return ix.m }

// CollisionThreshold exposes l for tests and reports.
func (ix *Index) CollisionThreshold() int { return ix.l }

// Search implements baselines.Index with virtual rehashing.
func (ix *Index) Search(q []float32, k int) ([]baselines.Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("c2lsh: query has %d dims, index has %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, errors.New("c2lsh: k must be >= 1")
	}
	n := len(ix.vectors)
	p := ix.params

	qh := make([]int64, ix.m)
	for j := 0; j < ix.m; j++ {
		qh[j] = ix.hash(j, q)
	}
	freq := make([]uint16, n)
	verified := make([]bool, n)
	// Scanned window per table: [lo, hi) indices into the sorted arrays.
	winLo := make([]int, ix.m)
	winHi := make([]int, ix.m)
	for j := range winLo {
		winLo[j] = -1
	}

	best := topk.New(k)
	maxVerify := k + int(p.Beta*float64(n))
	nVerified := 0
	threshold := ix.l

	verify := func(id uint32) {
		if verified[id] {
			return
		}
		verified[id] = true
		nVerified++
		best.Push(uint64(id), vecmath.DistSq(q, ix.vectors[id]))
	}

	radius := int64(1)
	maxRounds := 40 // R grows as c^round; 2^40 exceeds any realistic spread
	for round := 0; round < maxRounds; round++ {
		for j := 0; j < ix.m && nVerified < maxVerify; j++ {
			ht := &ix.tables[j]
			// Bucket of q at this radius: hashes in [base, base+R).
			base := floorDiv(qh[j], radius) * radius
			lo := sort.Search(len(ht.hashes), func(i int) bool { return ht.hashes[i] >= base })
			hi := sort.Search(len(ht.hashes), func(i int) bool { return ht.hashes[i] >= base+radius })
			if winLo[j] == -1 {
				for i := lo; i < hi; i++ {
					id := ht.ids[i]
					freq[id]++
					if int(freq[id]) >= threshold {
						verify(id)
					}
				}
				winLo[j], winHi[j] = lo, hi
				continue
			}
			for i := lo; i < winLo[j]; i++ {
				id := ht.ids[i]
				freq[id]++
				if int(freq[id]) >= threshold {
					verify(id)
				}
			}
			for i := winHi[j]; i < hi; i++ {
				id := ht.ids[i]
				freq[id]++
				if int(freq[id]) >= threshold {
					verify(id)
				}
			}
			if lo < winLo[j] {
				winLo[j] = lo
			}
			if hi > winHi[j] {
				winHi[j] = hi
			}
		}
		// Terminal condition T1: k candidates within c·R (distances in
		// scaled space), T2: verification budget exhausted.
		if nVerified >= maxVerify {
			break
		}
		if best.Full() {
			bound, _ := best.Bound()
			if math.Sqrt(bound)*ix.scale <= p.C*float64(radius) {
				break
			}
		}
		radius = int64(float64(radius) * p.C)
		if radius <= 0 { // overflow guard
			break
		}
	}

	items := best.Items()
	out := make([]baselines.Result, len(items))
	for i, it := range items {
		out[i] = baselines.Result{ID: it.ID, Dist: math.Sqrt(it.Dist)}
	}
	return out, nil
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// SizeBytes implements baselines.Index: m sorted hash tables of n
// entries, all memory-resident (as in the authors' implementation, which
// is why it crashed on SIFT100M in §5.4).
func (ix *Index) SizeBytes() int64 {
	return int64(ix.m) * int64(len(ix.vectors)) * 12 // 8B hash + 4B id
}

// Close implements baselines.Index.
func (ix *Index) Close() error { return nil }
