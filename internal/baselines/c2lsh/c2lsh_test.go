package c2lsh

import (
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

func TestRatioWithinTarget(t *testing.T) {
	ds := data.Generate(data.Config{N: 4000, Dim: 32, Clusters: 8, Lo: 0, Hi: 1, Seed: 1})
	queries := ds.PerturbedQueries(15, 0.01, 2)
	ix, err := Build(ds.Vectors, Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.NumHashFunctions() < 10 {
		t.Errorf("m = %d, suspiciously small", ix.NumHashFunctions())
	}
	if ix.CollisionThreshold() < 1 || ix.CollisionThreshold() > ix.NumHashFunctions() {
		t.Errorf("l = %d outside [1, m]", ix.CollisionThreshold())
	}
	_, truthDists := data.GroundTruth(ds.Vectors, queries, 10)
	var ratioSum float64
	for qi, q := range queries {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 {
			t.Fatal("no results")
		}
		dists := make([]float64, len(res))
		for i, r := range res {
			dists[i] = r.Dist
		}
		ratioSum += metrics.Ratio(dists, truthDists[qi])
	}
	if ratio := ratioSum / float64(len(queries)); ratio > 2.0 {
		t.Errorf("C2LSH mean ratio = %v, beyond its c=2 target", ratio)
	}
}

func TestSelfQueryFindsSelf(t *testing.T) {
	ds := data.Generate(data.Config{N: 1000, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 4})
	ix, err := Build(ds.Vectors, Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 20; i++ {
		res, err := ix.Search(ds.Vectors[i*37], 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) > 0 && res[0].ID == uint64(i*37) {
			hits++
		}
	}
	// A point colliding with itself in every hash function must be found
	// nearly always.
	if hits < 16 {
		t.Errorf("self-query hit %d/20, expected >= 16", hits)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build(nil, Params{}); err == nil {
		t.Error("empty dataset must fail")
	}
	ds := data.Uniform(200, 8, 0, 1, 6)
	ix, err := Build(ds.Vectors, Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(ds.Vectors[0][:2], 1); err == nil {
		t.Error("wrong dims must fail")
	}
	if _, err := ix.Search(ds.Vectors[0], 0); err == nil {
		t.Error("k=0 must fail")
	}
	if ix.Name() != "C2LSH" || ix.SizeBytes() <= 0 {
		t.Error("interface misbehaviour")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {6, 3, 2}, {-6, 3, -2}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
