package netfault

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hd-index/hdindex/internal/leakcheck"
)

// backend starts a trivial HTTP server and a proxy in front of it.
func backend(t *testing.T) (*Proxy, func()) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	p, err := Listen(strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	return p, func() { p.Close(); ts.Close() }
}

// get fetches / through the proxy with the given client timeout.
func get(p *Proxy, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	defer client.CloseIdleConnections()
	resp, err := client.Get("http://" + p.Addr() + "/")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if string(body) != "pong" {
		return errors.New("wrong body " + string(body))
	}
	return nil
}

func TestPassThrough(t *testing.T) {
	defer leakcheck.Check(t)()
	p, done := backend(t)
	defer done()
	if err := get(p, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if p.Conns() == 0 {
		t.Fatal("no connections counted")
	}
}

func TestLatency(t *testing.T) {
	p, done := backend(t)
	defer done()
	const delay = 150 * time.Millisecond
	p.SetRules(Rules{Latency: delay})
	start := time.Now()
	if err := get(p, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("request took %v, want >= %v of injected latency", elapsed, delay)
	}
	// Back to pass-through: the same proxy must be fast again.
	p.SetRules(Rules{})
	start = time.Now()
	if err := get(p, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > delay {
		t.Fatalf("request took %v after clearing rules, want fast", elapsed)
	}
}

func TestBlackholeTimesOut(t *testing.T) {
	p, done := backend(t)
	defer done()
	p.SetRules(Rules{Blackhole: true})
	err := get(p, 300*time.Millisecond)
	if err == nil {
		t.Fatal("request through a blackhole succeeded")
	}
}

func TestResetFailsFast(t *testing.T) {
	p, done := backend(t)
	defer done()
	p.SetRules(Rules{Reset: true})
	start := time.Now()
	err := get(p, 2*time.Second)
	if err == nil {
		t.Fatal("request through a reset link succeeded")
	}
	// A reset is an instant error, unlike a blackhole's timeout.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("reset took %v to surface, want fast failure", elapsed)
	}
}

// TestRulesAffectOpenConnections proves the keep-alive case: a
// connection established under pass-through rules sees faults injected
// later, because rules are consulted per forwarded chunk.
func TestRulesAffectOpenConnections(t *testing.T) {
	p, done := backend(t)
	defer done()
	client := &http.Client{Timeout: 300 * time.Millisecond}
	defer client.CloseIdleConnections()
	resp, err := client.Get("http://" + p.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	p.SetRules(Rules{Blackhole: true})
	// Same client, same (kept-alive) connection: must now hang.
	if _, err := client.Get("http://" + p.Addr() + "/"); err == nil {
		t.Fatal("keep-alive request through a blackhole succeeded")
	}
}

func TestBandwidthThrottle(t *testing.T) {
	// A dedicated backend serving 64 KiB so the throttle has bytes to
	// meter: at 256 KiB/s the transfer must take ~250ms.
	payload := strings.Repeat("x", 64<<10)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()
	p, err := Listen(strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetRules(Rules{BandwidthBPS: 256 << 10})
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()
	start := time.Now()
	resp, err := client.Get("http://" + p.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) != len(payload) {
		t.Fatalf("read %d bytes, err %v", len(body), err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("64KiB at 256KiB/s took %v, want >= 150ms", elapsed)
	}
}

// TestConcurrentSetRules hammers rule swaps against live traffic —
// run with -race, this is the data-race check.
func TestConcurrentSetRules(t *testing.T) {
	defer leakcheck.Check(t)()
	p, done := backend(t)
	defer done()
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		modes := []Rules{{}, {Latency: time.Millisecond}, {BandwidthBPS: 1 << 20}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				p.SetRules(modes[i%len(modes)])
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	var getters sync.WaitGroup
	for i := 0; i < 4; i++ {
		getters.Add(1)
		go func() {
			defer getters.Done()
			for j := 0; j < 20; j++ {
				_ = get(p, 2*time.Second)
			}
		}()
	}
	getters.Wait()
	close(stop)
	swapper.Wait()
}

// TestCloseSeversConnections proves Close unblocks in-flight traffic
// instead of leaking the pipes.
func TestCloseSeversConnections(t *testing.T) {
	defer leakcheck.Check(t)()
	p, done := backend(t)
	defer done()
	p.SetRules(Rules{Blackhole: true})
	errCh := make(chan error, 1)
	go func() { errCh <- get(p, 10*time.Second) }()
	time.Sleep(50 * time.Millisecond)
	p.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("blackholed request succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the in-flight request")
	}
	// Dialing a closed proxy fails outright.
	if _, err := net.DialTimeout("tcp", p.Addr(), 200*time.Millisecond); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}
