// Package netfault is a fault-injecting TCP proxy — the network analog
// of internal/iofault. Tests put it between a client and a real server
// and turn knobs at runtime to make the link slow, dead, or flaky:
//
//	p, _ := netfault.Listen("127.0.0.1:9001")   // forwards to the server
//	client.Get("http://" + p.Addr() + "/...")   // via the proxy
//	p.SetRules(netfault.Rules{Latency: 200 * time.Millisecond})
//
// Rules are read per forwarded chunk, so they affect connections
// already open (an HTTP keep-alive connection established before
// SetRules still sees the new behaviour on its next request):
//
//   - Latency delays every forwarded chunk in both directions. An HTTP
//     request/response pair typically moves as one chunk each way, so
//     the observed round-trip grows by about 2×Latency.
//   - Blackhole swallows traffic: bytes are read and dropped, nothing
//     is forwarded, connections stay open. The peer hangs until its own
//     timeout fires — the pathology hedged requests exist for.
//   - Reset tears connections down with an RST (SO_LINGER 0) at the
//     next activity, and new connections at accept.
//   - BandwidthBPS throttles forwarding to this many bytes/second per
//     direction per connection.
//
// The zero Rules value is a transparent pass-through.
package netfault

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Rules is the active fault configuration. See the package comment for
// each field's semantics.
type Rules struct {
	Latency      time.Duration
	Blackhole    bool
	Reset        bool
	BandwidthBPS int
}

// Proxy is one listener forwarding to one target address.
type Proxy struct {
	target   string
	listener net.Listener
	rules    atomic.Pointer[Rules]

	conns     atomic.Int64 // total accepted
	mu        sync.Mutex
	active    map[net.Conn]struct{} // client+upstream conns, for Close
	closed    bool
	acceptErr sync.WaitGroup // accept loop + copy goroutines
}

// Listen starts a proxy on an ephemeral loopback port forwarding every
// connection to target (a host:port). Close releases it.
func Listen(target string) (*Proxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, listener: l, active: make(map[net.Conn]struct{})}
	p.rules.Store(&Rules{})
	p.acceptErr.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port) for clients.
func (p *Proxy) Addr() string { return p.listener.Addr().String() }

// SetRules swaps the active fault configuration. Takes effect on the
// next forwarded chunk of every connection, open or future.
func (p *Proxy) SetRules(r Rules) { p.rules.Store(&r) }

// Rules returns the active fault configuration.
func (p *Proxy) Rules() Rules { return *p.rules.Load() }

// Conns returns the total number of accepted connections.
func (p *Proxy) Conns() int64 { return p.conns.Load() }

// Close stops accepting, severs every open connection, and waits for
// the proxy's goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.listener.Close()
	for c := range p.active {
		c.Close()
	}
	p.mu.Unlock()
	p.acceptErr.Wait()
	return err
}

// track registers c for Close; reports false when the proxy is already
// closed (the caller must close c itself).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.active[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.active, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.acceptErr.Done()
	for {
		client, err := p.listener.Accept()
		if err != nil {
			return // listener closed
		}
		p.conns.Add(1)
		if p.rules.Load().Reset {
			rst(client)
			continue
		}
		upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		if !p.track(client) || !p.track(upstream) {
			client.Close()
			upstream.Close()
			return
		}
		p.acceptErr.Add(2)
		go p.pipe(client, upstream)
		go p.pipe(upstream, client)
	}
}

// rst closes c with SO_LINGER 0, so the peer sees a TCP RST rather
// than a graceful FIN — the "process died mid-connection" signature.
func rst(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	c.Close()
}

// pipe forwards src→dst one chunk at a time, consulting the live rules
// before each forward. Closing either side ends both directions: the
// reader's Close unblocks the sibling pipe's Read.
func (p *Proxy) pipe(dst, src net.Conn) {
	defer p.acceptErr.Done()
	defer func() {
		p.untrack(src)
		p.untrack(dst)
		src.Close()
		dst.Close()
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			r := p.rules.Load()
			switch {
			case r.Reset:
				rst(src)
				rst(dst)
				return
			case r.Blackhole:
				// Swallow: the bytes vanish, the connection lives on.
			default:
				if r.Latency > 0 {
					time.Sleep(r.Latency)
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
				if r.BandwidthBPS > 0 {
					time.Sleep(time.Duration(float64(n) / float64(r.BandwidthBPS) * float64(time.Second)))
				}
			}
		}
		if err != nil {
			// EOF or error either way: tear the pair down. HTTP (the
			// only traffic this proxy carries) never half-closes, so
			// propagating FINs asymmetrically buys nothing but leaked
			// descriptors.
			return
		}
	}
}
