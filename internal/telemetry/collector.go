package telemetry

import "time"

// Collector bundles one index's operation histograms. core.Index owns
// one; shards each own their own and merge snapshots on read. All
// methods are safe on a nil receiver (every observation becomes a no-op)
// so callers never need nil guards on cold paths.
type Collector struct {
	// Query records whole-query wall time (single queries and each
	// query of a batch).
	Query Histogram
	// Insert records Insert wall time including WAL durability waits.
	Insert Histogram
	// Compaction records background compaction wall time.
	Compaction Histogram
	// WALSync records WAL fsync durations.
	WALSync Histogram
	// Phase records per-phase query durations, indexed by Phase.
	Phase [NumPhases]Histogram
}

// NewCollector returns an enabled collector.
func NewCollector() *Collector { return &Collector{} }

// Enabled reports whether observations will be recorded; a nil
// collector is disabled. Pass this to StartSpan so a disabled index
// skips clock reads entirely.
func (c *Collector) Enabled() bool { return c != nil }

// ObserveQuery records one whole-query duration plus its per-phase
// breakdown.
func (c *Collector) ObserveQuery(d time.Duration, phases PhaseNS) {
	if c == nil {
		return
	}
	c.Query.ObserveDuration(d)
	for i := range c.Phase {
		// Phases the query never reached keep the histogram honest at
		// zero only if recorded; skip untouched phases instead so phase
		// counts reflect queries that exercised them.
		if phases[i] > 0 {
			c.Phase[i].Observe(phases[i])
		}
	}
}

// ObserveInsert records one insert duration.
func (c *Collector) ObserveInsert(d time.Duration) {
	if c == nil {
		return
	}
	c.Insert.ObserveDuration(d)
}

// ObserveCompaction records one compaction duration.
func (c *Collector) ObserveCompaction(d time.Duration) {
	if c == nil {
		return
	}
	c.Compaction.ObserveDuration(d)
}

// ObserveWALSync records one WAL fsync duration.
func (c *Collector) ObserveWALSync(d time.Duration) {
	if c == nil {
		return
	}
	c.WALSync.ObserveDuration(d)
}

// CollectorSnapshot is an immutable copy of a Collector's histograms,
// mergeable across shards.
type CollectorSnapshot struct {
	Query      Snapshot
	Insert     Snapshot
	Compaction Snapshot
	WALSync    Snapshot
	Phase      [NumPhases]Snapshot
}

// Snapshot copies every histogram. Safe on a nil collector (returns an
// empty snapshot).
func (c *Collector) Snapshot() CollectorSnapshot {
	var s CollectorSnapshot
	if c == nil {
		return s
	}
	s.Query = c.Query.Snapshot()
	s.Insert = c.Insert.Snapshot()
	s.Compaction = c.Compaction.Snapshot()
	s.WALSync = c.WALSync.Snapshot()
	for i := range c.Phase {
		s.Phase[i] = c.Phase[i].Snapshot()
	}
	return s
}

// Merge adds other's counts into s.
func (s *CollectorSnapshot) Merge(other CollectorSnapshot) {
	s.Query.Merge(other.Query)
	s.Insert.Merge(other.Insert)
	s.Compaction.Merge(other.Compaction)
	s.WALSync.Merge(other.WALSync)
	for i := range s.Phase {
		s.Phase[i].Merge(other.Phase[i])
	}
}
