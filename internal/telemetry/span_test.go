package telemetry

import (
	"testing"
	"time"
)

func TestSpanDisabledIsInert(t *testing.T) {
	s := StartSpan(false)
	s.Mark(PhaseTreeWalk)
	s.Mark(PhaseRefine)
	if s.NS != (PhaseNS{}) {
		t.Fatalf("disabled span recorded time: %v", s.NS)
	}
}

func TestSpanMarks(t *testing.T) {
	s := StartSpan(true)
	time.Sleep(2 * time.Millisecond)
	s.Mark(PhaseTreeWalk)
	time.Sleep(1 * time.Millisecond)
	s.Mark(PhaseRefine)
	if s.NS[PhaseTreeWalk] < int64(time.Millisecond) {
		t.Fatalf("tree walk %dns, want >= 1ms", s.NS[PhaseTreeWalk])
	}
	if s.NS[PhaseRefine] <= 0 {
		t.Fatalf("refine %dns, want > 0", s.NS[PhaseRefine])
	}
	if s.NS[PhaseCandidateSort] != 0 || s.NS[PhaseMemtableScan] != 0 || s.NS[PhaseTopKMerge] != 0 {
		t.Fatalf("unmarked phases nonzero: %v", s.NS)
	}
	if s.NS.Total() != s.NS[PhaseTreeWalk]+s.NS[PhaseRefine] {
		t.Fatalf("total mismatch: %v", s.NS)
	}
}

func TestPhaseNames(t *testing.T) {
	want := map[Phase]string{
		PhaseTreeWalk:      "tree_walk",
		PhaseCandidateSort: "candidate_sort",
		PhaseRefine:        "refine",
		PhaseMemtableScan:  "memtable_scan",
		PhaseTopKMerge:     "topk_merge",
		Phase(99):          "unknown",
	}
	for p, name := range want {
		if got := p.String(); got != name {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, name)
		}
	}
}

func TestPhaseNSAdd(t *testing.T) {
	a := PhaseNS{1, 2, 3, 4, 5}
	a.Add(PhaseNS{10, 20, 30, 40, 50})
	if a != (PhaseNS{11, 22, 33, 44, 55}) {
		t.Fatalf("Add = %v", a)
	}
	if a.Total() != 165 {
		t.Fatalf("Total = %d", a.Total())
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector enabled")
	}
	c.ObserveQuery(time.Millisecond, PhaseNS{1, 2, 3, 4, 5})
	c.ObserveInsert(time.Millisecond)
	c.ObserveCompaction(time.Millisecond)
	c.ObserveWALSync(time.Millisecond)
	if s := c.Snapshot(); s.Query.Count != 0 {
		t.Fatalf("nil collector snapshot = %+v", s)
	}
}

func TestCollectorObserveAndMerge(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	a.ObserveQuery(2*time.Millisecond, PhaseNS{1000, 0, 2000, 0, 500})
	b.ObserveQuery(4*time.Millisecond, PhaseNS{3000, 100, 0, 50, 0})
	a.ObserveWALSync(time.Millisecond)
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	if sa.Query.Count != 2 {
		t.Fatalf("merged query count = %d, want 2", sa.Query.Count)
	}
	if sa.WALSync.Count != 1 {
		t.Fatalf("merged wal sync count = %d, want 1", sa.WALSync.Count)
	}
	// Zero-valued phases are skipped; both observed tree_walk.
	if sa.Phase[PhaseTreeWalk].Count != 2 {
		t.Fatalf("tree_walk count = %d, want 2", sa.Phase[PhaseTreeWalk].Count)
	}
	if sa.Phase[PhaseCandidateSort].Count != 1 {
		t.Fatalf("candidate_sort count = %d, want 1", sa.Phase[PhaseCandidateSort].Count)
	}
}
