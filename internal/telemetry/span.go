package telemetry

import "time"

// Phase identifies one stage of the query pipeline. The order follows
// the execution order in core's Query.
type Phase int

const (
	// PhaseTreeWalk covers reference-distance computation plus the
	// per-tree Hilbert range retrieval and lower-bound filtering.
	PhaseTreeWalk Phase = iota
	// PhaseCandidateSort covers candidate union, dedup, truncation and
	// the ID sort that makes refinement I/O sequential.
	PhaseCandidateSort
	// PhaseRefine covers exact-distance refinement against raw vectors
	// through the buffer pool.
	PhaseRefine
	// PhaseMemtableScan covers the brute-force scan of vectors not yet
	// compacted into the trees.
	PhaseMemtableScan
	// PhaseTopKMerge covers draining the top-k heap and building the
	// result slice.
	PhaseTopKMerge

	numPhases
)

// NumPhases is the number of query phases a Span can attribute time to.
const NumPhases = int(numPhases)

var phaseNames = [NumPhases]string{
	"tree_walk",
	"candidate_sort",
	"refine",
	"memtable_scan",
	"topk_merge",
}

// String returns the snake_case phase name used in stats JSON, the
// slow-query log, and Prometheus labels.
func (p Phase) String() string {
	if p < 0 || int(p) >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// PhaseNS holds per-phase elapsed nanoseconds, indexed by Phase. It is
// a plain value: copy and add freely.
type PhaseNS [NumPhases]int64

// Add accumulates other into p (for merging per-shard stats).
func (p *PhaseNS) Add(other PhaseNS) {
	for i := range p {
		p[i] += other[i]
	}
}

// Total returns the sum over all phases.
func (p PhaseNS) Total() int64 {
	var t int64
	for _, v := range p {
		t += v
	}
	return t
}

// Span attributes wall time to pipeline phases. Create one with
// StartSpan at the top of an operation and call Mark(phase) at each
// phase boundary: the time since the previous mark is charged to that
// phase. A span from StartSpan(false) is inert — Mark is a single
// branch, no clock reads — which is the "telemetry disabled" fast path.
type Span struct {
	on   bool
	last time.Time
	NS   PhaseNS
}

// StartSpan begins a span at the current time when enabled is true, or
// returns an inert span otherwise.
func StartSpan(enabled bool) Span {
	if !enabled {
		return Span{}
	}
	return Span{on: true, last: time.Now()}
}

// Mark charges the time since the previous mark (or span start) to
// phase and restarts the clock.
func (s *Span) Mark(phase Phase) {
	if !s.on {
		return
	}
	now := time.Now()
	s.NS[phase] += now.Sub(s.last).Nanoseconds()
	s.last = now
}
