// Package telemetry provides the latency-measurement substrate for the
// index: a lock-free log-bucketed histogram for recording durations on
// hot paths, and a lightweight span tracer that attributes each query's
// wall time to its pipeline phases (tree walk, candidate sort,
// refinement, memtable scan, top-k merge).
//
// # Histogram
//
// Histogram is an HDR-style log-linear histogram: values below 2^subBits
// land in exact unit-width buckets; above that, each power-of-two octave
// is split into 2^subBits linear sub-buckets, bounding the relative
// quantile error at 2^-subBits (3.125% with subBits=5). Every mutation
// is a single atomic add, so writers never block each other or readers —
// Observe is safe from any number of goroutines and costs a few
// nanoseconds.
//
// Readers call Snapshot, which copies the counters into an immutable
// Snapshot value. Snapshots merge (across shards), subtract (for
// windowed views: current minus previous scrape), and answer quantile
// and mean queries. The histogram additionally carries an exact running
// sum and an exact all-time maximum, so Mean is precise even though
// quantiles are bucket-estimated.
//
// # Span
//
// Span stamps per-phase durations into a PhaseNS array with one
// time.Now call per phase boundary. A disabled Span is inert: Mark
// returns without reading the clock, so the cost of the tracer when
// telemetry is off is a single predictable branch.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits fixes the histogram resolution: each power-of-two octave
	// has 2^subBits linear sub-buckets, so a quantile estimate is off
	// by at most 2^-subBits (3.125%) of the true value.
	subBits = 5
	subMask = (1 << subBits) - 1

	// Values below 2^subBits get exact unit buckets; each of the
	// remaining 64-subBits octaves gets 2^subBits sub-buckets.
	numBuckets = (1 << subBits) + (64-subBits)*(1<<subBits)
)

// Histogram is a lock-free log-bucketed latency histogram. The zero
// value is ready to use. Histograms must not be copied after first use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v uint64) int {
	if v < 1<<subBits {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the highest set bit, >= subBits
	sub := (v >> (uint(exp) - subBits)) & subMask
	return (exp-subBits)<<subBits + (1 << subBits) + int(sub)
}

// bucketUpper returns the largest value that maps to bucket i — the
// inclusive upper bound reported for quantiles and exposition.
func bucketUpper(i int) uint64 {
	if i < 1<<subBits {
		return uint64(i)
	}
	exp := uint((i-(1<<subBits))>>subBits) + subBits
	sub := uint64(i & subMask)
	return 1<<exp + (sub+1)<<(exp-subBits) - 1
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	u := uint64(0)
	if v > 0 {
		u = uint64(v)
	}
	h.count.Add(1)
	h.sum.Add(u)
	h.buckets[bucketIndex(u)].Add(1)
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Snapshot copies the histogram's counters into an immutable view.
// Concurrent Observes may straddle the copy — a snapshot is a consistent
// enough view for monitoring, not a linearization point. One invariant
// IS guaranteed: Count >= the bucket total. Observe bumps count before
// its bucket, and the copy reads count last, so every bucket increment
// the copy sees has its count increment visible too — which keeps the
// +Inf bucket of a Prometheus rendering cumulative even under a write
// storm.
func (h *Histogram) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	s := Snapshot{Buckets: make([]uint64, numBuckets)}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	s.Count = h.count.Load()
	return s
}

// Snapshot is an immutable copy of a Histogram's counters. The zero
// value is an empty snapshot. Buckets is indexed by the internal bucket
// scheme; use ForEachBucket for boundary-annotated iteration.
type Snapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets []uint64
}

// Merge adds other's counts into s (for aggregating shards).
func (s *Snapshot) Merge(other Snapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	if other.Buckets == nil {
		return
	}
	if s.Buckets == nil {
		s.Buckets = make([]uint64, numBuckets)
	}
	for i, c := range other.Buckets {
		s.Buckets[i] += c
	}
}

// Sub returns the delta snapshot s minus older — the observations that
// arrived between the two scrapes. older must be an earlier snapshot of
// the same histogram; mismatched inputs saturate at zero rather than
// wrapping. The delta's Max is estimated from its highest non-empty
// bucket (exact maxima are not subtractable), clamped to the all-time
// max.
func (s Snapshot) Sub(older Snapshot) Snapshot {
	d := Snapshot{
		Count: satSub(s.Count, older.Count),
		Sum:   satSub(s.Sum, older.Sum),
	}
	if s.Buckets == nil {
		return d
	}
	d.Buckets = make([]uint64, numBuckets)
	top := -1
	for i := range s.Buckets {
		var o uint64
		if older.Buckets != nil {
			o = older.Buckets[i]
		}
		d.Buckets[i] = satSub(s.Buckets[i], o)
		if d.Buckets[i] > 0 {
			top = i
		}
	}
	if top >= 0 {
		d.Max = min(bucketUpper(top), s.Max)
	}
	return d
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Mean returns the exact arithmetic mean of the observed values.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (q in [0,1]) with the
// nearest-rank convention (the k = ceil(q·n)-th smallest observation,
// the standard for latency percentiles), walking the cumulative bucket
// counts and interpolating linearly inside the bucket that holds rank
// k. The estimate is within 2^-subBits (3.125%) of the true value and
// never exceeds Max.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || s.Buckets == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	k := uint64(math.Ceil(q * float64(s.Count)))
	if k < 1 {
		k = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		// Ranks (cum, cum+c] live in bucket i.
		if k <= cum+c {
			lo, hi := float64(0), float64(bucketUpper(i))
			if i > 0 {
				lo = float64(bucketUpper(i-1)) + 1
			}
			frac := float64(k-cum) / float64(c)
			return min(lo+frac*(hi-lo), float64(s.Max))
		}
		cum += c
	}
	return float64(s.Max)
}

// ForEachBucket calls fn for every non-empty bucket in increasing value
// order with the bucket's inclusive upper bound and its (non-cumulative)
// count. Used by the Prometheus exposition writer.
func (s Snapshot) ForEachBucket(fn func(upper uint64, count uint64)) {
	for i, c := range s.Buckets {
		if c > 0 {
			fn(bucketUpper(i), c)
		}
	}
}
