package telemetry

import (
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip pins the bucket scheme: every value maps to a
// bucket whose bounds contain it, upper bounds are strictly increasing,
// and the relative bucket width above the exact range is <= 2^-subBits.
func TestBucketRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxUint64}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		up := bucketUpper(i)
		if v > up {
			t.Errorf("value %d above its bucket upper %d (bucket %d)", v, up, i)
		}
		if i > 0 && v <= bucketUpper(i-1) {
			t.Errorf("value %d not above previous bucket upper %d (bucket %d)", v, bucketUpper(i-1), i)
		}
	}
	prev := uint64(0)
	for i := 0; i < numBuckets; i++ {
		up := bucketUpper(i)
		if i > 0 && up <= prev {
			t.Fatalf("bucketUpper not strictly increasing at %d: %d <= %d", i, up, prev)
		}
		if up >= 1<<subBits && i < numBuckets-1 {
			lo := prev + 1
			width := float64(up-lo) + 1
			if rel := width / float64(lo); rel > 1.0/(1<<subBits)*1.001 {
				t.Fatalf("bucket %d relative width %.4f exceeds 2^-%d", i, rel, subBits)
			}
		}
		prev = up
	}
}

// TestQuantileAccuracy pins the estimation error against an exact
// sorted reference on a log-uniform workload: every estimated quantile
// must land within the 2^-subBits (3.125%) relative bound, and the mean
// must be exact.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]int64, 0, 20000)
	var sum uint64
	for i := 0; i < 20000; i++ {
		// Log-uniform across ~6 decades, like latencies: 100ns..100ms.
		v := int64(100 * math.Pow(1e6, rng.Float64()))
		vals = append(vals, v)
		sum += uint64(v)
		h.Observe(v)
	}
	slices.Sort(vals)
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	if s.Sum != sum {
		t.Fatalf("sum = %d, want %d (sum must be exact)", s.Sum, sum)
	}
	if got, want := s.Mean(), float64(sum)/float64(len(vals)); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("mean = %g, want exact %g", got, want)
	}
	if s.Max != uint64(vals[len(vals)-1]) {
		t.Fatalf("max = %d, want exact %d", s.Max, vals[len(vals)-1])
	}
	const relBound = 1.0 / (1 << subBits) // 3.125%
	for _, q := range []float64{0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1} {
		got := s.Quantile(q)
		// Nearest-rank reference: the ceil(q*n)-th smallest value.
		k := max(1, int(math.Ceil(q*float64(len(vals)))))
		exact := float64(vals[k-1])
		if rel := math.Abs(got-exact) / exact; rel > relBound {
			t.Errorf("q=%.3f: estimate %.0f vs exact %.0f, rel err %.4f > %.4f",
				q, got, exact, rel, relBound)
		}
	}
	if got := s.Quantile(1); got > float64(s.Max) {
		t.Fatalf("p100 %.0f exceeds max %d", got, s.Max)
	}
}

// TestHistogramConcurrency hammers Observe, Snapshot, and Merge from
// many goroutines under the race detector, then checks the final
// snapshot is exact.
func TestHistogramConcurrency(t *testing.T) {
	const (
		writers       = 16
		perWriter     = 5000
		snapshotters  = 4
		snapshotEvery = 500 * time.Microsecond
	)
	var h Histogram
	done := make(chan struct{})
	var snaps sync.WaitGroup
	for i := 0; i < snapshotters; i++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			var merged Snapshot
			for {
				select {
				case <-done:
					return
				default:
				}
				s := h.Snapshot()
				// A concurrent snapshot may catch a count bump before
				// its sum/bucket adds, but never more buckets than
				// counts by a wide margin; mainly this exercises the
				// race detector on the read path.
				var inBuckets uint64
				for _, c := range s.Buckets {
					inBuckets += c
				}
				if inBuckets > s.Count+writers {
					t.Errorf("bucket total %d far exceeds count %d", inBuckets, s.Count)
					return
				}
				merged.Merge(s)
				_ = s.Sub(merged) // exercise Sub concurrently too
				time.Sleep(snapshotEvery)
			}
		}()
	}
	var wg sync.WaitGroup
	var wantSum uint64
	var mu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var local uint64
			for i := 0; i < perWriter; i++ {
				v := rng.Int63n(1 << 30)
				local += uint64(v)
				h.Observe(v)
			}
			mu.Lock()
			wantSum += local
			mu.Unlock()
		}(int64(w))
	}
	wg.Wait()
	close(done)
	snaps.Wait()

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	var inBuckets uint64
	for _, c := range s.Buckets {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket total %d != count %d", inBuckets, s.Count)
	}
}

func TestSnapshotMergeSub(t *testing.T) {
	var a, b Histogram
	for i := int64(1); i <= 100; i++ {
		a.Observe(i * 1000)
	}
	for i := int64(1); i <= 50; i++ {
		b.Observe(i * 2000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	// Snapshot buckets are shared slices; clone before mutating.
	merged.Buckets = slices.Clone(sa.Buckets)
	merged.Merge(sb)
	if merged.Count != 150 {
		t.Fatalf("merged count = %d, want 150", merged.Count)
	}
	if merged.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merged sum = %d, want %d", merged.Sum, sa.Sum+sb.Sum)
	}
	if merged.Max != 100000 {
		t.Fatalf("merged max = %d, want 100000", merged.Max)
	}

	// Window delta: observe more into a, subtract the old snapshot.
	for i := int64(1); i <= 10; i++ {
		a.Observe(i * 500)
	}
	delta := a.Snapshot().Sub(sa)
	if delta.Count != 10 {
		t.Fatalf("delta count = %d, want 10", delta.Count)
	}
	var wantDeltaSum uint64
	for i := uint64(1); i <= 10; i++ {
		wantDeltaSum += i * 500
	}
	if delta.Sum != wantDeltaSum {
		t.Fatalf("delta sum = %d, want %d", delta.Sum, wantDeltaSum)
	}
	// Delta max is a bucket-upper estimate of the true 5000: at most
	// 2^-subBits above, never below the true max's bucket floor.
	if delta.Max < 5000 || float64(delta.Max) > 5000*(1+1.0/(1<<subBits)) {
		t.Fatalf("delta max estimate %d outside [5000, 5157]", delta.Max)
	}

	// Mismatched inputs saturate, never wrap.
	weird := Snapshot{Count: 1, Sum: 1}.Sub(sa)
	if weird.Count != 0 || weird.Sum != 0 {
		t.Fatalf("saturating sub got %+v", weird)
	}
}

func TestEmptySnapshot(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	var nilH *Histogram
	nilH.Observe(5) // must not panic
	if got := nilH.Snapshot(); got.Count != 0 {
		t.Fatalf("nil histogram snapshot = %+v", got)
	}
	var zero Snapshot
	zero.Merge(s) // nil-bucket merge must not panic
	if d := s.Sub(zero); d.Count != 0 {
		t.Fatalf("sub on empty = %+v", d)
	}
}

func TestForEachBucketCumulative(t *testing.T) {
	var h Histogram
	obs := []int64{10, 10, 100, 1000, 1000, 1000, 50000}
	for _, v := range obs {
		h.Observe(v)
	}
	s := h.Snapshot()
	var total uint64
	prevUpper := int64(-1)
	s.ForEachBucket(func(upper, count uint64) {
		if int64(upper) <= prevUpper {
			t.Fatalf("upper bounds not increasing: %d after %d", upper, prevUpper)
		}
		prevUpper = int64(upper)
		total += count
	})
	if total != uint64(len(obs)) {
		t.Fatalf("ForEachBucket total = %d, want %d", total, len(obs))
	}
}
