package rdbtree

import (
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"github.com/hd-index/hdindex/internal/pager"
)

// Table 3 of the paper: leaf orders from Eq. (4) at page size 4 KB.
// SIFT/Yorck/SUN/Audio match the printed table; for Enron and Glove the
// printed values (18 and 40) disagree with the paper's own Eq. (4), which
// yields 33 and 46 — we implement the equation (see EXPERIMENTS.md).
func TestLeafOrderTable3(t *testing.T) {
	cases := []struct {
		name            string
		eta, omega, m   int
		want            int
		printedInTable3 int
	}{
		{"SIFT", 16, 8, 10, 63, 63},
		{"Yorck", 16, 32, 10, 36, 36},
		{"SUN", 64, 32, 10, 13, 13},
		{"Audio", 24, 32, 10, 28, 28},
		{"Enron", 37, 16, 10, 33, 18},
		{"Glove", 10, 32, 10, 46, 40},
	}
	for _, c := range cases {
		if got := LeafOrder(4096, c.eta, c.omega, c.m); got != c.want {
			t.Errorf("%s: LeafOrder = %d, want %d (table prints %d)",
				c.name, got, c.want, c.printedInTable3)
		}
	}
}

func mkRDB(t *testing.T, cfg Config, pageSize int) (*Tree, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rdb.pg")
	pgr, err := pager.Open(path, pager.Options{Create: true, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(pgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pgr.Close() })
	return tr, path
}

func key16(v uint64) []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint64(b[8:], v)
	return b
}

func TestCreateUsesEquation4Order(t *testing.T) {
	// SIFT geometry: keys 16 B, values 8+40 B, order 63 at 4 KB pages.
	tr, _ := mkRDB(t, Config{Eta: 16, Omega: 8, M: 10}, 4096)
	if tr.LeafOrder() != 63 {
		t.Fatalf("leaf order = %d, want 63", tr.LeafOrder())
	}
}

func TestBulkLoadAndScan(t *testing.T) {
	cfg := Config{Eta: 16, Omega: 8, M: 3}
	tr, _ := mkRDB(t, cfg, 512)
	var recs []Record
	for i := 0; i < 500; i++ {
		recs = append(recs, Record{
			Key:      key16(uint64(i * 7)),
			ID:       uint64(i),
			RefDists: []float32{float32(i), float32(i) * 2, float32(i) * 3},
		})
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 500 {
		t.Fatalf("Count = %d", tr.Count())
	}
	i := 0
	tr.ScanAll(func(k []byte, e Entry) bool {
		if e.ID != uint64(i) {
			t.Fatalf("pos %d id = %d", i, e.ID)
		}
		if e.RefDists[1] != float32(i)*2 {
			t.Fatalf("pos %d refdists = %v", i, e.RefDists)
		}
		i++
		return true
	})
	if i != 500 {
		t.Fatalf("scanned %d", i)
	}
}

func TestBulkLoadWrongRefDistLen(t *testing.T) {
	tr, _ := mkRDB(t, Config{Eta: 16, Omega: 8, M: 3}, 512)
	err := tr.BulkLoad([]Record{{Key: key16(1), ID: 0, RefDists: []float32{1}}})
	if err == nil {
		t.Fatal("wrong refdist length must fail")
	}
}

func TestSearchNearestCentred(t *testing.T) {
	cfg := Config{Eta: 16, Omega: 8, M: 2}
	tr, _ := mkRDB(t, cfg, 512)
	var recs []Record
	for i := 0; i < 100; i++ {
		recs = append(recs, Record{Key: key16(uint64(i * 10)), ID: uint64(i), RefDists: []float32{0, 0}})
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	// Query key 497 sits between ids 49 (490) and 50 (500); nearest 6 by
	// key distance: 500(3), 490(7), 510(13), 480(17), 520(23), 470(27).
	got, err := tr.SearchNearest(key16(497), 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{50, 49, 51, 48, 52, 47}
	if len(got) != len(want) {
		t.Fatalf("got %d entries", len(got))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Fatalf("pos %d id = %d, want %d (all %v)", i, e.ID, want[i], got)
		}
	}
}

func TestSearchNearestTieGoesRight(t *testing.T) {
	cfg := Config{Eta: 16, Omega: 8, M: 1}
	tr, _ := mkRDB(t, cfg, 512)
	recs := []Record{
		{Key: key16(90), ID: 1, RefDists: []float32{0}},
		{Key: key16(110), ID: 2, RefDists: []float32{0}},
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	got, err := tr.SearchNearest(key16(100), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("tie must go right, got %v", got)
	}
}

func TestSearchNearestAtExtremes(t *testing.T) {
	cfg := Config{Eta: 16, Omega: 8, M: 1}
	tr, _ := mkRDB(t, cfg, 512)
	var recs []Record
	for i := 0; i < 50; i++ {
		recs = append(recs, Record{Key: key16(uint64(1000 + i)), ID: uint64(i), RefDists: []float32{0}})
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	// Before all keys.
	got, err := tr.SearchNearest(key16(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID != 0 || got[1].ID != 1 || got[2].ID != 2 {
		t.Fatalf("before-all = %+v", got)
	}
	// After all keys.
	got, err = tr.SearchNearest(key16(99999), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID != 49 || got[1].ID != 48 || got[2].ID != 47 {
		t.Fatalf("after-all = %+v", got)
	}
	// Alpha larger than the tree returns everything.
	got, err = tr.SearchNearest(key16(1025), 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("alpha>n returned %d", len(got))
	}
}

// Property: SearchNearest returns exactly the alpha keys nearest to the
// query key, matching a brute-force sort.
func TestSearchNearestAgainstBruteForce(t *testing.T) {
	cfg := Config{Eta: 16, Omega: 8, M: 1}
	tr, _ := mkRDB(t, cfg, 512)
	rng := rand.New(rand.NewSource(13))
	keys := make([]uint64, 0, 300)
	seen := map[uint64]bool{}
	var recs []Record
	for len(keys) < 300 {
		k := uint64(rng.Intn(1 << 20))
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, k := range keys {
		recs = append(recs, Record{Key: key16(k), ID: uint64(i), RefDists: []float32{0}})
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	absDiff := func(a, b uint64) uint64 {
		if a > b {
			return a - b
		}
		return b - a
	}
	for trial := 0; trial < 50; trial++ {
		q := uint64(rng.Intn(1 << 20))
		alpha := rng.Intn(20) + 1
		got, err := tr.SearchNearest(key16(q), alpha)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: sort ids by |key - q|.
		idx := make([]int, len(keys))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			da, db := absDiff(keys[idx[a]], q), absDiff(keys[idx[b]], q)
			if da != db {
				return da < db
			}
			return keys[idx[a]] > keys[idx[b]] // tie: right side first
		})
		if len(got) != alpha {
			t.Fatalf("got %d, want %d", len(got), alpha)
		}
		for i := 0; i < alpha; i++ {
			if got[i].ID != uint64(idx[i]) {
				t.Fatalf("trial %d pos %d: id %d, want %d (q=%d)", trial, i, got[i].ID, idx[i], q)
			}
		}
	}
}

func TestInsertThenSearch(t *testing.T) {
	cfg := Config{Eta: 16, Omega: 8, M: 2}
	tr, _ := mkRDB(t, cfg, 512)
	if err := tr.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tr.Insert(key16(uint64(i*3)), uint64(i), []float32{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.SearchNearest(key16(300), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 100 {
		t.Fatalf("nearest to 300 = %d, want 100", got[0].ID)
	}
	if err := tr.Insert(key16(1), 999, []float32{1}); err == nil {
		t.Fatal("wrong refdist count must fail")
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.pg")
	pgr, err := pager.Open(path, pager.Options{Create: true, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eta: 16, Omega: 8, M: 4}
	tr, err := Create(pgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < 100; i++ {
		recs = append(recs, Record{Key: key16(uint64(i)), ID: uint64(i), RefDists: []float32{1, 2, 3, 4}})
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := pgr.Close(); err != nil {
		t.Fatal(err)
	}

	pgr2, err := pager.Open(path, pager.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pgr2.Close()
	tr2, err := Open(pgr2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Config() != cfg {
		t.Fatalf("config = %+v, want %+v", tr2.Config(), cfg)
	}
	got, err := tr2.SearchNearest(key16(42), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 42 || got[0].RefDists[3] != 4 {
		t.Fatalf("reopened search = %+v", got[0])
	}
}

func TestCreateValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.pg")
	pgr, err := pager.Open(path, pager.Options{Create: true, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer pgr.Close()
	if _, err := Create(pgr, Config{Eta: 0, Omega: 8, M: 1}); err == nil {
		t.Error("eta=0 must fail")
	}
	if _, err := Create(pgr, Config{Eta: 4, Omega: 40, M: 1}); err == nil {
		t.Error("omega>32 must fail")
	}
	if _, err := Create(pgr, Config{Eta: 4, Omega: 8, M: 0}); err == nil {
		t.Error("m=0 must fail")
	}
	// Entry too large for the page.
	if _, err := Create(pgr, Config{Eta: 64, Omega: 32, M: 100}); err == nil {
		t.Error("oversized entry must fail")
	}
}

func TestSearchEmptyTree(t *testing.T) {
	tr, _ := mkRDB(t, Config{Eta: 16, Omega: 8, M: 1}, 512)
	got, err := tr.SearchNearest(key16(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
	if _, err := tr.SearchNearest(key16(5), 0); err == nil {
		t.Fatal("alpha=0 must fail")
	}
}
