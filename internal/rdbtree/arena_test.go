package rdbtree

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/pager"
	"github.com/hd-index/hdindex/internal/radix"
)

// mkArena builds parallel flat arenas of n random keys/refdists plus the
// sorted permutation, and the equivalent []Record input for BulkLoad.
func mkArena(t *testing.T, cfg Config, n int, seed int64) (keys []byte, perm []uint32, rdist []float32, recs []Record) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	kl, m := cfg.KeyLen(), cfg.M
	keys = make([]byte, n*kl)
	rng.Read(keys)
	rdist = make([]float32, n*m)
	for i := range rdist {
		rdist[i] = rng.Float32() * 100
	}
	perm = make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	radix.Sort(keys, kl, perm)
	recs = make([]Record, n)
	for i, row := range perm {
		recs[i] = Record{
			Key:      keys[int(row)*kl : (int(row)+1)*kl],
			ID:       uint64(row),
			RefDists: rdist[int(row)*m : (int(row)+1)*m],
		}
	}
	return keys, perm, rdist, recs
}

func mkTreeAt(t *testing.T, path string, cfg Config, pageSize int) (*Tree, *pager.Pager) {
	t.Helper()
	pgr, err := pager.Open(path, pager.Options{Create: true, PageSize: pageSize, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(pgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, pgr
}

// TestBulkLoadArenaMatchesBulkLoad pins the arena loader to the record
// loader byte-for-byte: same sorted input, identical tree files.
func TestBulkLoadArenaMatchesBulkLoad(t *testing.T) {
	cfg := Config{Eta: 16, Omega: 8, M: 5}
	const n = 2000
	keys, perm, rdist, recs := mkArena(t, cfg, n, 11)

	dir := t.TempDir()
	pa, pb := filepath.Join(dir, "arena.pg"), filepath.Join(dir, "records.pg")
	ta, pgrA := mkTreeAt(t, pa, cfg, 4096)
	if err := ta.BulkLoadArena(keys, perm, nil, rdist); err != nil {
		t.Fatal(err)
	}
	if err := ta.Flush(); err != nil {
		t.Fatal(err)
	}
	if ta.Count() != n {
		t.Fatalf("arena count = %d", ta.Count())
	}
	pgrA.Close()

	tb, pgrB := mkTreeAt(t, pb, cfg, 4096)
	if err := tb.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := tb.Flush(); err != nil {
		t.Fatal(err)
	}
	pgrB.Close()

	ba := readFile(t, pa)
	bb := readFile(t, pb)
	if !bytes.Equal(ba, bb) {
		t.Fatalf("arena-loaded tree file differs from record-loaded one (%d vs %d bytes)", len(ba), len(bb))
	}
}

// TestBulkLoadArenaIDs checks the explicit row→id mapping.
func TestBulkLoadArenaIDs(t *testing.T) {
	cfg := Config{Eta: 16, Omega: 8, M: 2}
	const n = 300
	keys, perm, rdist, _ := mkArena(t, cfg, n, 12)
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)*10 + 7
	}
	tr, pgr := mkTreeAt(t, filepath.Join(t.TempDir(), "ids.pg"), cfg, 1024)
	defer pgr.Close()
	if err := tr.BulkLoadArena(keys, perm, ids, rdist); err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 0, n)
	for _, row := range perm {
		want = append(want, ids[row])
	}
	// Equal keys may interleave, so compare as sorted multisets per scan
	// position is overkill — keys are random 16-byte, ties negligible.
	got := make([]uint64, 0, n)
	tr.ScanAll(func(_ []byte, e Entry) bool {
		got = append(got, e.ID)
		return true
	})
	if len(got) != n {
		t.Fatalf("scanned %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pos %d: id = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBulkLoadArenaValidation(t *testing.T) {
	cfg := Config{Eta: 16, Omega: 8, M: 2}
	tr, pgr := mkTreeAt(t, filepath.Join(t.TempDir(), "bad.pg"), cfg, 1024)
	defer pgr.Close()
	kl := cfg.KeyLen()
	if err := tr.BulkLoadArena(make([]byte, 3*kl), []uint32{0, 1}, nil, make([]float32, 4)); err == nil {
		t.Fatal("short perm vs keys must fail")
	}
	if err := tr.BulkLoadArena(make([]byte, 2*kl), []uint32{0, 1}, nil, make([]float32, 3)); err == nil {
		t.Fatal("wrong refdist arena length must fail")
	}
	if err := tr.BulkLoadArena(make([]byte, 2*kl), []uint32{0, 1}, []uint64{1}, make([]float32, 4)); err == nil {
		t.Fatal("wrong ids length must fail")
	}
	// Unsorted perm must surface bptree's ErrNotSorted, not corrupt.
	keys := make([]byte, 2*kl)
	keys[0] = 1 // row 0 > row 1
	if err := tr.BulkLoadArena(keys, []uint32{0, 1}, nil, make([]float32, 4)); err == nil {
		t.Fatal("unsorted arena order must fail")
	}
}

// TestBulkLoadArenaEmpty loads zero rows and leaves a valid empty tree.
func TestBulkLoadArenaEmpty(t *testing.T) {
	cfg := Config{Eta: 16, Omega: 8, M: 2}
	tr, pgr := mkTreeAt(t, filepath.Join(t.TempDir(), "empty.pg"), cfg, 1024)
	defer pgr.Close()
	if err := tr.BulkLoadArena(nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 0 {
		t.Fatalf("count = %d", tr.Count())
	}
}

// TestInsertNoAlloc pins the write-path satellite: after warm-up,
// Insert's value encoding reuses the tree's scratch buffer.
func TestInsertNoAlloc(t *testing.T) {
	cfg := Config{Eta: 16, Omega: 8, M: 4}
	tr, pgr := mkTreeAt(t, filepath.Join(t.TempDir(), "ins.pg"), cfg, 4096)
	defer pgr.Close()
	rd := []float32{1, 2, 3, 4}
	key := make([]byte, cfg.KeyLen())
	put := func(i uint64) {
		for b := range key {
			key[b] = byte(i >> (8 * uint(len(key)-1-b)))
		}
		if err := tr.Insert(key, i, rd); err != nil {
			t.Fatal(err)
		}
	}
	put(0) // warm-up allocates the scratch and the first leaf split path
	allocs := testing.AllocsPerRun(50, func() {
		put(1) // same key each run: no page splits, pure encode+insert
	})
	// The bptree layer itself still allocates (descend path, header
	// write); the bound asserts only that rdbtree's per-call value
	// buffer is gone — with it, the same loop measured 4.
	if allocs > 3 {
		t.Fatalf("Insert allocates %.1f objects/op, want <= 3", allocs)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
