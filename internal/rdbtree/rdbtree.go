// Package rdbtree implements the paper's novel structure: the RDB-tree
// (Reference Distance B+-tree, §3.2).
//
// An RDB-tree is a B+-tree over Hilbert keys whose leaves do not store
// object descriptors or bare pointers, but each object's distances to the
// m reference objects, alongside its pointer (object id). That leaf design
// is the paper's central trade: candidates fetched from a leaf can be
// filtered with the triangular and Ptolemaic inequalities (§4.2) without
// any further I/O, and the leaf order Ω stays high even at ν in the
// hundreds because m ≪ ν.
//
// Leaf entry layout (paper Eq. (4)):
//
//	[Hilbert key: ceil(η·ω/8) bytes][object id: 8 bytes][m × float32 distances]
//
// The leaf order is Ω = max { (η·(ω/8) + 4m + 8)·Ω + 16 + 1 ≤ B } exactly
// as in Eq. (4), reproduced against Table 3 in the tests.
package rdbtree

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/hd-index/hdindex/internal/bptree"
	"github.com/hd-index/hdindex/internal/hilbert"
	"github.com/hd-index/hdindex/internal/pager"
)

// Config fixes the geometry of an RDB-tree.
type Config struct {
	Eta   int // dimensions per Hilbert curve (η)
	Omega int // Hilbert curve order (ω)
	M     int // number of reference objects (m)
}

// KeyLen returns the Hilbert key width in bytes: ceil(η·ω/8).
func (c Config) KeyLen() int { return (c.Eta*c.Omega + 7) / 8 }

// ValLen returns the per-entry payload width: 8-byte pointer + m floats.
func (c Config) ValLen() int { return 8 + 4*c.M }

// LeafOrder evaluates the paper's Eq. (4): the largest Ω such that
// (η·(ω/8) + 4·m + 8)·Ω + 16 + 1 ≤ B.
func LeafOrder(pageSize, eta, omega, m int) int {
	entry := eta*omega/8 + 4*m + 8
	if eta*omega%8 != 0 {
		entry++ // ceil for orders not a multiple of 8 bits
	}
	return (pageSize - 17) / entry
}

// Entry is one leaf record: an object pointer plus its reference distances.
type Entry struct {
	ID       uint64
	RefDists []float32
}

// Tree is an RDB-tree in a single pager file.
type Tree struct {
	bt  *bptree.Tree
	cfg Config
	// valBuf is Insert's value-encoding scratch, reused across calls so
	// the single-object write path allocates nothing. Insert already
	// requires external serialisation (core holds its write lock), so
	// the shared buffer adds no new constraint.
	valBuf []byte
}

// Create initialises an empty RDB-tree in a fresh pager file.
func Create(pgr *pager.Pager, cfg Config) (*Tree, error) {
	if cfg.Eta < 1 || cfg.Omega < 1 || cfg.Omega > 32 || cfg.M < 1 {
		return nil, fmt.Errorf("rdbtree: invalid config %+v", cfg)
	}
	order := LeafOrder(pgr.PageSize(), cfg.Eta, cfg.Omega, cfg.M)
	if order < 1 {
		return nil, fmt.Errorf("rdbtree: page size %d cannot hold one entry of config %+v", pgr.PageSize(), cfg)
	}
	// Our leaf header needs 2 bytes more than Eq. (4) accounts for (an
	// entry count); cap at the physically possible order in that corner.
	maxPhysical := (pgr.PageSize() - 19) / (cfg.KeyLen() + cfg.ValLen())
	if order > maxPhysical {
		order = maxPhysical
	}
	bt, err := bptree.Create(pgr, bptree.Config{
		KeyLen:  cfg.KeyLen(),
		ValLen:  cfg.ValLen(),
		LeafCap: order,
	})
	if err != nil {
		return nil, err
	}
	t := &Tree{bt: bt, cfg: cfg}
	return t, t.writeExtra()
}

// Open loads an RDB-tree from an existing pager file.
func Open(pgr *pager.Pager) (*Tree, error) {
	bt, err := bptree.Open(pgr)
	if err != nil {
		return nil, err
	}
	extra := bt.Extra()
	if len(extra) < 12 {
		return nil, errors.New("rdbtree: missing config metadata")
	}
	cfg := Config{
		Eta:   int(binary.BigEndian.Uint32(extra[0:])),
		Omega: int(binary.BigEndian.Uint32(extra[4:])),
		M:     int(binary.BigEndian.Uint32(extra[8:])),
	}
	if cfg.KeyLen() != bt.KeyLen() || cfg.ValLen() != bt.ValLen() {
		return nil, errors.New("rdbtree: config/tree geometry mismatch")
	}
	return &Tree{bt: bt, cfg: cfg}, nil
}

func (t *Tree) writeExtra() error {
	extra := make([]byte, 12)
	binary.BigEndian.PutUint32(extra[0:], uint32(t.cfg.Eta))
	binary.BigEndian.PutUint32(extra[4:], uint32(t.cfg.Omega))
	binary.BigEndian.PutUint32(extra[8:], uint32(t.cfg.M))
	return t.bt.SetExtra(extra)
}

// Config returns the tree's geometry.
func (t *Tree) Config() Config { return t.cfg }

// Count returns the number of indexed objects.
func (t *Tree) Count() uint64 { return t.bt.Count() }

// LeafOrder returns the effective leaf order Ω.
func (t *Tree) LeafOrder() int { return t.bt.LeafCap() }

// Pager exposes the underlying pager for stats and closing.
func (t *Tree) Pager() *pager.Pager { return t.bt.Pager() }

// Flush persists all state.
func (t *Tree) Flush() error { return t.bt.Flush() }

func (t *Tree) encodeValue(dst []byte, id uint64, refDists []float32) {
	binary.BigEndian.PutUint64(dst[0:8], id)
	for i, d := range refDists {
		binary.LittleEndian.PutUint32(dst[8+4*i:], math.Float32bits(d))
	}
}

// decodeValueInto decodes into caller-provided RefDists storage (len m).
func (t *Tree) decodeValueInto(v []byte, rd []float32) Entry {
	e := Entry{
		ID:       binary.BigEndian.Uint64(v[0:8]),
		RefDists: rd,
	}
	for i := range e.RefDists {
		e.RefDists[i] = math.Float32frombits(binary.LittleEndian.Uint32(v[8+4*i:]))
	}
	return e
}

// Record is bulk-load input: a pre-computed Hilbert key, the object id,
// and the object's distances to the m reference objects.
type Record struct {
	Key      []byte
	ID       uint64
	RefDists []float32
}

// BulkLoad builds the tree from records sorted by Key (Algorithm 1,
// lines 8–10).
func (t *Tree) BulkLoad(records []Record) error {
	src := &recordSource{t: t, records: records, buf: make([]byte, t.cfg.ValLen())}
	return t.bt.BulkLoad(src)
}

type recordSource struct {
	t       *Tree
	records []Record
	buf     []byte
	i       int
}

func (s *recordSource) Next() (key, value []byte, ok bool) {
	if s.i >= len(s.records) {
		return nil, nil, false
	}
	r := s.records[s.i]
	s.i++
	if len(r.RefDists) != s.t.cfg.M {
		// Signal the mismatch through a wrong-length value, which
		// BulkLoad turns into ErrValueLen.
		return r.Key, nil, true
	}
	s.t.encodeValue(s.buf, r.ID, r.RefDists)
	return r.Key, s.buf, true
}

// BulkLoadArena builds the tree from flat construction arenas — the
// zero-copy counterpart of BulkLoad that the radix-sorted build path
// streams from. keys holds one KeyLen()-wide row per object in object
// order (never reordered; row r is keys[r*KeyLen():(r+1)*KeyLen()]),
// rdist the matching M-wide float32 rows, and perm lists row numbers in
// ascending key order (radix.Sort's output). ids maps a row number to
// its object id; nil means the row number is the id, which is exactly
// the shape core's build produces. Nothing is allocated per record: the
// leaf writer copies straight out of the arenas through one reused
// value buffer.
func (t *Tree) BulkLoadArena(keys []byte, perm []uint32, ids []uint64, rdist []float32) error {
	n := len(perm)
	kl, m := t.cfg.KeyLen(), t.cfg.M
	if len(keys) != n*kl {
		return fmt.Errorf("rdbtree: key arena holds %d bytes, want %d rows × %d", len(keys), n, kl)
	}
	if len(rdist) != n*m {
		return fmt.Errorf("rdbtree: refdist arena holds %d floats, want %d rows × %d", len(rdist), n, m)
	}
	if ids != nil && len(ids) != n {
		return fmt.Errorf("rdbtree: got %d ids for %d rows", len(ids), n)
	}
	src := &arenaSource{
		t: t, keys: keys, perm: perm, ids: ids, rdist: rdist,
		buf: make([]byte, t.cfg.ValLen()),
	}
	return t.bt.BulkLoad(src)
}

type arenaSource struct {
	t     *Tree
	keys  []byte
	perm  []uint32
	ids   []uint64
	rdist []float32
	buf   []byte
	i     int
}

func (s *arenaSource) Next() (key, value []byte, ok bool) {
	if s.i >= len(s.perm) {
		return nil, nil, false
	}
	row := int(s.perm[s.i])
	s.i++
	kl, m := s.t.cfg.KeyLen(), s.t.cfg.M
	id := uint64(row)
	if s.ids != nil {
		id = s.ids[row]
	}
	s.t.encodeValue(s.buf, id, s.rdist[row*m:(row+1)*m])
	return s.keys[row*kl : (row+1)*kl], s.buf, true
}

// Insert adds a single object (§3.6 updates). Not safe for concurrent
// use with itself (callers already serialise writes).
func (t *Tree) Insert(key []byte, id uint64, refDists []float32) error {
	if len(refDists) != t.cfg.M {
		return fmt.Errorf("rdbtree: got %d reference distances, want %d", len(refDists), t.cfg.M)
	}
	if t.valBuf == nil {
		t.valBuf = make([]byte, t.cfg.ValLen())
	}
	t.encodeValue(t.valBuf, id, refDists)
	return t.bt.Insert(key, t.valBuf)
}

// SearchNearest returns up to alpha entries whose Hilbert keys are
// numerically nearest to key — the candidate retrieval of §4.1. It seeks
// the key's would-be position and walks outward along the leaf chain,
// always consuming the side whose next key is closer to the query key.
func (t *Tree) SearchNearest(key []byte, alpha int) ([]Entry, error) {
	entries, _, err := t.SearchNearestInto(context.Background(), key, alpha, nil, nil)
	return entries, err
}

// SearchNearestInto is SearchNearest with caller-provided storage: dst
// receives the entries (its backing array is reused when large enough)
// and arena backs every entry's RefDists slice as one flat allocation of
// alpha·m floats. Either may be nil. The returned entries alias the
// returned arena (which the caller should keep for the next call), so
// they are only valid until the buffers are reused. The leaf-chain walk
// is the query's dominant I/O phase, so ctx is checked periodically and
// a cancelled walk stops within a few page reads.
func (t *Tree) SearchNearestInto(ctx context.Context, key []byte, alpha int, dst []Entry, arena []float32) ([]Entry, []float32, error) {
	// The buffers are prepared first and returned on every path, error
	// or not, so a pooling caller never loses them to a transient
	// failure.
	out := dst[:0]
	if cap(out) < alpha {
		out = make([]Entry, 0, alpha)
	}
	if cap(arena) < alpha*t.cfg.M {
		arena = make([]float32, 0, alpha*t.cfg.M)
	}
	arena = arena[:0]
	if alpha < 1 {
		return out, arena, fmt.Errorf("rdbtree: alpha must be >= 1, got %d", alpha)
	}
	right := t.bt.NewCursor()
	defer right.Close()
	if err := right.Seek(key); err != nil {
		return out, arena, err
	}
	left, err := right.Clone()
	if err != nil {
		return out, arena, err
	}
	defer left.Close()
	if left.Valid() {
		if err := left.Prev(); err != nil {
			return out, arena, err
		}
	} else {
		// Query key past the end: left scan starts at the last entry.
		if err := left.Last(); err != nil {
			return out, arena, err
		}
	}
	take := func(v []byte) {
		m := t.cfg.M
		rd := arena[len(arena) : len(arena)+m : len(arena)+m]
		arena = arena[:len(arena)+m]
		out = append(out, t.decodeValueInto(v, rd))
	}
	// Key-delta scratch: keys are at most ceil(η·ω/8) bytes, which fits
	// the stack arrays for every realistic geometry (η·ω ≤ 512 bits);
	// only pathological configs pay the heap fallback.
	var dlArr, drArr [64]byte
	dl, dr := dlArr[:], drArr[:]
	if len(key) > len(dlArr) {
		dl = make([]byte, len(key))
		dr = make([]byte, len(key))
	} else {
		dl, dr = dl[:len(key)], dr[:len(key)]
	}
	const walkCheckEvery = 256
	for len(out) < alpha && (left.Valid() || right.Valid()) {
		if len(out)%walkCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return out, arena, err
			}
		}
		takeRight := false
		switch {
		case !left.Valid():
			takeRight = true
		case !right.Valid():
			takeRight = false
		default:
			hilbert.KeyDelta(dl, key, left.Key())
			hilbert.KeyDelta(dr, key, right.Key())
			// Ties go right: keys >= the query key are preferred, the
			// same convention a forward range scan would use.
			takeRight = bytes.Compare(dr, dl) <= 0
		}
		if takeRight {
			take(right.Value())
			if err := right.Next(); err != nil {
				return out, arena, err
			}
		} else {
			take(left.Value())
			if err := left.Prev(); err != nil {
				return out, arena, err
			}
		}
	}
	return out, arena, nil
}

// ScanAll invokes fn for every entry in key order; used by integrity
// checks and tests. The Entry's RefDists alias one scratch slice reused
// across callbacks — valid only for the duration of fn; copy to retain.
func (t *Tree) ScanAll(fn func(key []byte, e Entry) bool) error {
	rd := make([]float32, t.cfg.M)
	return t.bt.Scan(nil, nil, func(k, v []byte) bool {
		return fn(k, t.decodeValueInto(v, rd))
	})
}
