package rdbtree

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/hd-index/hdindex/internal/pager"
)

// Property (testing/quick): for any query key, SearchNearest(1) returns
// an entry whose key distance to the query is globally minimal.
func TestQuickNearestIsGlobalMinimum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.pg")
	pgr, err := pager.Open(path, pager.Options{Create: true, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer pgr.Close()
	tr, err := Create(pgr, Config{Eta: 16, Omega: 8, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	keys := make([]uint64, 0, 400)
	seen := map[uint64]bool{}
	for len(keys) < 400 {
		k := uint64(rng.Intn(1 << 24))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	// Sort and load.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	recs := make([]Record, len(keys))
	for i, k := range keys {
		recs[i] = Record{Key: key16(k), ID: uint64(i), RefDists: []float32{0}}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}

	absDiff := func(a, b uint64) uint64 {
		if a > b {
			return a - b
		}
		return b - a
	}
	f := func(qRaw uint32) bool {
		q := uint64(qRaw) % (1 << 24)
		got, err := tr.SearchNearest(key16(q), 1)
		if err != nil || len(got) != 1 {
			return false
		}
		gotDist := absDiff(keys[got[0].ID], q)
		for _, k := range keys {
			if absDiff(k, q) < gotDist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: every entry bulk-loaded is retrievable with a sufficiently
// large alpha, and the multiset of ids is exactly preserved.
func TestQuickAllEntriesReachable(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 10
		path := filepath.Join(t.TempDir(), "qa.pg")
		pgr, err := pager.Open(path, pager.Options{Create: true, PageSize: 256})
		if err != nil {
			return false
		}
		defer pgr.Close()
		tr, err := Create(pgr, Config{Eta: 16, Omega: 8, M: 1})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		recs := make([]Record, n)
		prev := uint64(0)
		for i := range recs {
			prev += uint64(rng.Intn(100)) // non-decreasing, duplicates allowed
			recs[i] = Record{Key: key16(prev), ID: uint64(i), RefDists: []float32{float32(i)}}
		}
		if err := tr.BulkLoad(recs); err != nil {
			return false
		}
		got, err := tr.SearchNearest(key16(0), n+10)
		if err != nil || len(got) != n {
			return false
		}
		found := make([]bool, n)
		for _, e := range got {
			if e.ID >= uint64(n) || found[e.ID] {
				return false
			}
			if e.RefDists[0] != float32(e.ID) {
				return false
			}
			found[e.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
