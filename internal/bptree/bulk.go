package bptree

import (
	"bytes"

	"github.com/hd-index/hdindex/internal/pager"
)

// EntrySource yields key/value pairs in non-decreasing key order for bulk
// loading. Next returns false when exhausted. The returned slices are only
// valid until the next call.
type EntrySource interface {
	Next() (key, value []byte, ok bool)
}

// SliceSource adapts in-memory parallel slices to an EntrySource.
type SliceSource struct {
	Keys   [][]byte
	Values [][]byte
	i      int
}

// Next implements EntrySource.
func (s *SliceSource) Next() (key, value []byte, ok bool) {
	if s.i >= len(s.Keys) {
		return nil, nil, false
	}
	k := s.Keys[s.i]
	var v []byte
	if s.Values != nil {
		v = s.Values[s.i]
	}
	s.i++
	return k, v, true
}

// BulkLoad builds the tree bottom-up from a sorted entry stream, replacing
// any previous content. This mirrors the paper's offline construction
// (Algorithm 1): leaves are packed to the leaf order Ω left to right, then
// each internal level is packed on top.
func (t *Tree) BulkLoad(src EntrySource) error {
	type childRef struct {
		firstKey []byte
		id       pager.PageID
	}
	var level []childRef

	// ---- leaf level ----
	var (
		cur      *pager.Page
		curN     int
		prevLeaf pager.PageID
		prevKey  []byte
		n        uint64
	)
	t.firstLeaf, t.lastLeaf = 0, 0
	flushLeaf := func() {
		setLeafCount(cur.Data, curN)
		setLeafLeft(cur.Data, prevLeaf)
		setLeafRight(cur.Data, 0)
		cur.MarkDirty()
		prevLeaf = cur.ID
		t.lastLeaf = cur.ID
		cur.Release()
		cur = nil
	}
	for {
		key, val, ok := src.Next()
		if !ok {
			break
		}
		if len(key) != t.keyLen {
			if cur != nil {
				flushLeaf()
			}
			return ErrKeyLen
		}
		if len(val) != t.valLen {
			if cur != nil {
				flushLeaf()
			}
			return ErrValueLen
		}
		if prevKey != nil && bytes.Compare(prevKey, key) > 0 {
			if cur != nil {
				flushLeaf()
			}
			return ErrNotSorted
		}
		prevKey = append(prevKey[:0], key...)
		if cur == nil {
			pg, err := t.pgr.Alloc()
			if err != nil {
				return err
			}
			initLeaf(pg.Data)
			cur = pg
			curN = 0
			if t.firstLeaf == 0 {
				t.firstLeaf = pg.ID
			}
			level = append(level, childRef{firstKey: append([]byte(nil), key...), id: pg.ID})
		}
		copy(t.leafKey(cur.Data, curN), key)
		copy(t.leafVal(cur.Data, curN), val)
		curN++
		n++
		if curN == t.leafCap {
			flushLeaf()
		}
	}
	if cur != nil {
		flushLeaf()
	}

	if len(level) == 0 {
		// Empty input: a single empty leaf.
		pg, err := t.pgr.Alloc()
		if err != nil {
			return err
		}
		initLeaf(pg.Data)
		pg.MarkDirty()
		t.root = pg.ID
		t.firstLeaf, t.lastLeaf = pg.ID, pg.ID
		t.height = 1
		t.count = 0
		pg.Release()
		return t.Flush()
	}

	// Fix up right-sibling links: leaves were chained left-to-right with
	// left links set; now set right links by walking the chain.
	if err := t.linkRightSiblings(); err != nil {
		return err
	}

	// ---- internal levels ----
	height := 1
	for len(level) > 1 {
		var next []childRef
		i := 0
		for i < len(level) {
			run := len(level) - i
			if run > t.branchCap+1 {
				run = t.branchCap + 1
			}
			// Avoid a trailing single-child node: borrow from this run.
			if rem := len(level) - i - run; rem == 1 && run > 2 {
				run--
			}
			pg, err := t.pgr.Alloc()
			if err != nil {
				return err
			}
			initInternal(pg.Data)
			setInternalCount(pg.Data, run-1)
			for j := 0; j < run; j++ {
				setInternalChild(pg.Data, j, level[i+j].id)
				if j > 0 {
					copy(t.internalKey(pg.Data, j-1), level[i+j].firstKey)
				}
			}
			pg.MarkDirty()
			next = append(next, childRef{firstKey: level[i].firstKey, id: pg.ID})
			pg.Release()
			i += run
		}
		level = next
		height++
	}
	t.root = level[0].id
	t.height = height
	t.count = n
	return t.Flush()
}

// linkRightSiblings walks the leaf chain backwards using left links and
// sets the right links.
func (t *Tree) linkRightSiblings() error {
	var right pager.PageID
	id := t.lastLeaf
	for id != 0 {
		pg, err := t.pgr.Get(id)
		if err != nil {
			return err
		}
		setLeafRight(pg.Data, right)
		pg.MarkDirty()
		right = id
		id = leafLeft(pg.Data)
		pg.Release()
	}
	return nil
}
