// Package bptree implements a disk-resident B+-tree over fixed-width byte
// keys with fixed-width values, on top of the pager.
//
// It is the shared tree machinery of the reproduction: RDB-trees (§3.2)
// are B+-trees whose leaf values are reference-object distances; iDistance
// [73] and QALSH [33] index sortable-float keys; Multicurves [66] stores
// whole descriptors in its leaves. All of these differ only in key/value
// width, which is why the widths are parameters rather than types.
//
// Keys sort by bytes.Compare. Duplicate keys are allowed (two objects can
// share a Hilbert grid cell). Trees are normally bulk-loaded bottom-up —
// the paper builds its indexes once — but incremental Insert is provided
// for §3.6 (updates).
package bptree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/hd-index/hdindex/internal/pager"
)

const (
	pageInternal = 1
	pageLeaf     = 2

	// Leaf layout: [1B type][8B left][8B right][2B count] + entries.
	// The paper's Eq. (4) accounts 16+1 bytes of leaf overhead (sibling
	// pointers + indicator); our two extra count bytes do not change any
	// of the Table 3 leaf orders (verified in rdbtree tests).
	leafHeader = 1 + 8 + 8 + 2

	// Internal layout: [1B type][2B count] + (count+1)*8B children + count*keyLen keys.
	internalHeader = 1 + 2
)

// Errors returned by the tree.
var (
	ErrKeyLen    = errors.New("bptree: key length mismatch")
	ErrValueLen  = errors.New("bptree: value length mismatch")
	ErrNotSorted = errors.New("bptree: bulk load input not sorted")
	ErrCorrupt   = errors.New("bptree: corrupt node")
)

// Config fixes the entry geometry of a tree.
type Config struct {
	KeyLen int // bytes per key, > 0
	ValLen int // bytes per value, >= 0

	// LeafCap overrides the computed leaf capacity when positive. The
	// RDB-tree uses it to pin the leaf order Ω to the paper's Eq. (4).
	LeafCap int
}

// Tree is a B+-tree in a pager file. A pager file holds exactly one tree.
// Safe for single-writer, multi-reader use (readers are distinct cursors).
type Tree struct {
	pgr       *pager.Pager
	keyLen    int
	valLen    int
	leafCap   int
	branchCap int // max separator keys per internal node
	root      pager.PageID
	height    int // 1 = root is a leaf
	count     uint64
	firstLeaf pager.PageID
	lastLeaf  pager.PageID
	extra     []byte // caller metadata persisted after the tree header
}

// Create initialises an empty tree in pgr (which must be freshly created).
func Create(pgr *pager.Pager, cfg Config) (*Tree, error) {
	t, err := newTree(pgr, cfg)
	if err != nil {
		return nil, err
	}
	// Empty tree: a single empty leaf as root.
	pg, err := pgr.Alloc()
	if err != nil {
		return nil, err
	}
	initLeaf(pg.Data)
	pg.MarkDirty()
	t.root = pg.ID
	t.firstLeaf = pg.ID
	t.lastLeaf = pg.ID
	t.height = 1
	pg.Release()
	return t, t.writeHeader()
}

// Open loads an existing tree from pgr's metadata.
func Open(pgr *pager.Pager) (*Tree, error) {
	meta := pgr.Meta()
	if len(meta) < headerSize {
		return nil, fmt.Errorf("%w: short tree header", ErrCorrupt)
	}
	cfg := Config{
		KeyLen:  int(binary.BigEndian.Uint32(meta[0:])),
		ValLen:  int(binary.BigEndian.Uint32(meta[4:])),
		LeafCap: int(binary.BigEndian.Uint32(meta[8:])),
	}
	t, err := newTree(pgr, cfg)
	if err != nil {
		return nil, err
	}
	t.root = pager.PageID(binary.BigEndian.Uint64(meta[12:]))
	t.height = int(binary.BigEndian.Uint32(meta[20:]))
	t.count = binary.BigEndian.Uint64(meta[24:])
	t.firstLeaf = pager.PageID(binary.BigEndian.Uint64(meta[32:]))
	t.lastLeaf = pager.PageID(binary.BigEndian.Uint64(meta[40:]))
	t.extra = append([]byte(nil), meta[headerSize:]...)
	return t, nil
}

func newTree(pgr *pager.Pager, cfg Config) (*Tree, error) {
	if cfg.KeyLen <= 0 {
		return nil, fmt.Errorf("bptree: KeyLen must be positive, got %d", cfg.KeyLen)
	}
	if cfg.ValLen < 0 {
		return nil, fmt.Errorf("bptree: ValLen must be >= 0, got %d", cfg.ValLen)
	}
	ps := pgr.PageSize()
	entry := cfg.KeyLen + cfg.ValLen
	maxLeaf := (ps - leafHeader) / entry
	if maxLeaf < 1 {
		return nil, fmt.Errorf("bptree: entry size %d does not fit page size %d", entry, ps)
	}
	leafCap := maxLeaf
	if cfg.LeafCap > 0 {
		if cfg.LeafCap > maxLeaf {
			return nil, fmt.Errorf("bptree: LeafCap %d exceeds page capacity %d", cfg.LeafCap, maxLeaf)
		}
		leafCap = cfg.LeafCap
	}
	branchCap := (ps - internalHeader - 8) / (cfg.KeyLen + 8)
	if branchCap < 2 {
		return nil, fmt.Errorf("bptree: key length %d too large for page size %d", cfg.KeyLen, ps)
	}
	return &Tree{
		pgr:       pgr,
		keyLen:    cfg.KeyLen,
		valLen:    cfg.ValLen,
		leafCap:   leafCap,
		branchCap: branchCap,
	}, nil
}

const headerSize = 48

func (t *Tree) writeHeader() error {
	meta := make([]byte, headerSize, headerSize+len(t.extra))
	binary.BigEndian.PutUint32(meta[0:], uint32(t.keyLen))
	binary.BigEndian.PutUint32(meta[4:], uint32(t.valLen))
	binary.BigEndian.PutUint32(meta[8:], uint32(t.leafCap))
	binary.BigEndian.PutUint64(meta[12:], uint64(t.root))
	binary.BigEndian.PutUint32(meta[20:], uint32(t.height))
	binary.BigEndian.PutUint64(meta[24:], t.count)
	binary.BigEndian.PutUint64(meta[32:], uint64(t.firstLeaf))
	binary.BigEndian.PutUint64(meta[40:], uint64(t.lastLeaf))
	meta = append(meta, t.extra...)
	return t.pgr.SetMeta(meta)
}

// Extra returns caller metadata persisted with the tree header.
func (t *Tree) Extra() []byte { return append([]byte(nil), t.extra...) }

// SetExtra stores caller metadata with the tree header; it is persisted
// on the next Flush (or any structural update).
func (t *Tree) SetExtra(extra []byte) error {
	t.extra = append([]byte(nil), extra...)
	return t.writeHeader()
}

// Count returns the number of entries.
func (t *Tree) Count() uint64 { return t.count }

// Height returns the tree height (1 = the root is a leaf).
func (t *Tree) Height() int { return t.height }

// KeyLen returns the key width in bytes.
func (t *Tree) KeyLen() int { return t.keyLen }

// ValLen returns the value width in bytes.
func (t *Tree) ValLen() int { return t.valLen }

// LeafCap returns the leaf order Ω (entries per leaf page).
func (t *Tree) LeafCap() int { return t.leafCap }

// BranchCap returns the maximum number of separator keys per internal node.
func (t *Tree) BranchCap() int { return t.branchCap }

// Pager exposes the underlying pager (for stats and closing).
func (t *Tree) Pager() *pager.Pager { return t.pgr }

// Flush persists the header and all dirty pages.
func (t *Tree) Flush() error {
	if err := t.writeHeader(); err != nil {
		return err
	}
	return t.pgr.Flush()
}

// ---- node accessors -------------------------------------------------------

func initLeaf(data []byte) {
	for i := range data[:leafHeader] {
		data[i] = 0
	}
	data[0] = pageLeaf
}

func initInternal(data []byte) {
	data[0] = pageInternal
	data[1], data[2] = 0, 0
}

func nodeType(data []byte) byte { return data[0] }

func leafCount(data []byte) int {
	return int(binary.BigEndian.Uint16(data[17:19]))
}

func setLeafCount(data []byte, n int) {
	binary.BigEndian.PutUint16(data[17:19], uint16(n))
}

func leafLeft(data []byte) pager.PageID {
	return pager.PageID(binary.BigEndian.Uint64(data[1:9]))
}

func setLeafLeft(data []byte, id pager.PageID) {
	binary.BigEndian.PutUint64(data[1:9], uint64(id))
}

func leafRight(data []byte) pager.PageID {
	return pager.PageID(binary.BigEndian.Uint64(data[9:17]))
}

func setLeafRight(data []byte, id pager.PageID) {
	binary.BigEndian.PutUint64(data[9:17], uint64(id))
}

func (t *Tree) entrySize() int { return t.keyLen + t.valLen }

func (t *Tree) leafKey(data []byte, i int) []byte {
	off := leafHeader + i*t.entrySize()
	return data[off : off+t.keyLen]
}

func (t *Tree) leafVal(data []byte, i int) []byte {
	off := leafHeader + i*t.entrySize() + t.keyLen
	return data[off : off+t.valLen]
}

func internalCount(data []byte) int {
	return int(binary.BigEndian.Uint16(data[1:3]))
}

func setInternalCount(data []byte, n int) {
	binary.BigEndian.PutUint16(data[1:3], uint16(n))
}

func internalChild(data []byte, i int) pager.PageID {
	off := internalHeader + i*8
	return pager.PageID(binary.BigEndian.Uint64(data[off : off+8]))
}

func setInternalChild(data []byte, i int, id pager.PageID) {
	off := internalHeader + i*8
	binary.BigEndian.PutUint64(data[off:off+8], uint64(id))
}

func (t *Tree) internalKeyOff(i int) int {
	return internalHeader + (t.branchCap+1)*8 + i*t.keyLen
}

func (t *Tree) internalKey(data []byte, i int) []byte {
	off := t.internalKeyOff(i)
	return data[off : off+t.keyLen]
}

// childIndex returns the index of the child subtree to descend into for
// key: the number of separator keys <= key.
func (t *Tree) childIndex(data []byte, key []byte) int {
	n := internalCount(data)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.internalKey(data, mid), key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafLowerBound returns the first index in the leaf with key >= key.
func (t *Tree) leafLowerBound(data []byte, key []byte) int {
	n := leafCount(data)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.leafKey(data, mid), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafUpperBound returns the first index in the leaf with key > key.
func (t *Tree) leafUpperBound(data []byte, key []byte) int {
	n := leafCount(data)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.leafKey(data, mid), key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// descend walks from the root to the leaf that should contain key,
// returning the leaf page (pinned) and, if path != nil, appending the
// internal (pageID, childIdx) route taken.
type pathStep struct {
	id  pager.PageID
	idx int
}

func (t *Tree) descend(key []byte, path *[]pathStep) (*pager.Page, error) {
	id := t.root
	for level := t.height; level > 1; level-- {
		pg, err := t.pgr.Get(id)
		if err != nil {
			return nil, err
		}
		if nodeType(pg.Data) != pageInternal {
			pg.Release()
			return nil, fmt.Errorf("%w: expected internal at level %d", ErrCorrupt, level)
		}
		idx := t.childIndex(pg.Data, key)
		if path != nil {
			*path = append(*path, pathStep{id, idx})
		}
		id = internalChild(pg.Data, idx)
		pg.Release()
	}
	pg, err := t.pgr.Get(id)
	if err != nil {
		return nil, err
	}
	if nodeType(pg.Data) != pageLeaf {
		pg.Release()
		return nil, fmt.Errorf("%w: expected leaf", ErrCorrupt)
	}
	return pg, nil
}
