package bptree

import (
	"bytes"
	"github.com/hd-index/hdindex/internal/pager"
)

// Insert adds one entry, keeping duplicates in insertion order among equal
// keys. It implements §3.6: B+-trees are naturally update-friendly, so a
// new object only costs its Hilbert key computation plus this insert.
func (t *Tree) Insert(key, value []byte) error {
	if len(key) != t.keyLen {
		return ErrKeyLen
	}
	if len(value) != t.valLen {
		return ErrValueLen
	}
	var path []pathStep
	leaf, err := t.descend(key, &path)
	if err != nil {
		return err
	}

	n := leafCount(leaf.Data)
	if n < t.leafCap {
		t.leafInsertAt(leaf.Data, t.leafUpperBound(leaf.Data, key), key, value)
		leaf.MarkDirty()
		leaf.Release()
		t.count++
		return t.writeHeader()
	}

	// Leaf split: allocate a right sibling, move the upper half.
	right, err := t.pgr.Alloc()
	if err != nil {
		leaf.Release()
		return err
	}
	initLeaf(right.Data)
	mid := n / 2
	es := t.entrySize()
	copy(right.Data[leafHeader:], leaf.Data[leafHeader+mid*es:leafHeader+n*es])
	setLeafCount(right.Data, n-mid)
	setLeafCount(leaf.Data, mid)

	// Rewire the sibling chain: leaf <-> right <-> oldRight.
	oldRight := leafRight(leaf.Data)
	setLeafRight(leaf.Data, right.ID)
	setLeafLeft(right.Data, leaf.ID)
	setLeafRight(right.Data, oldRight)
	if oldRight != 0 {
		orp, err := t.pgr.Get(oldRight)
		if err != nil {
			leaf.Release()
			right.Release()
			return err
		}
		setLeafLeft(orp.Data, right.ID)
		orp.MarkDirty()
		orp.Release()
	} else {
		t.lastLeaf = right.ID
	}

	// Place the new entry. Keys strictly below the right half's first key
	// go left; everything else goes right (equal keys land after their
	// duplicates via the upper bound). Either way the right half's first
	// key is unchanged, so it is a valid separator: every key in the
	// right subtree is >= sep and every key left of it is < sep.
	sep := append([]byte(nil), t.leafKey(right.Data, 0)...)
	if bytes.Compare(key, sep) < 0 {
		t.leafInsertAt(leaf.Data, t.leafUpperBound(leaf.Data, key), key, value)
	} else {
		t.leafInsertAt(right.Data, t.leafUpperBound(right.Data, key), key, value)
	}
	leaf.MarkDirty()
	right.MarkDirty()
	rightID := right.ID
	leaf.Release()
	right.Release()
	t.count++

	// Propagate the separator up the recorded path.
	if err := t.insertIntoParent(path, sep, rightID); err != nil {
		return err
	}
	return t.writeHeader()
}

// leafInsertAt shifts entries right and writes (key, value) at index i.
func (t *Tree) leafInsertAt(data []byte, i int, key, value []byte) {
	n := leafCount(data)
	es := t.entrySize()
	copy(data[leafHeader+(i+1)*es:leafHeader+(n+1)*es], data[leafHeader+i*es:leafHeader+n*es])
	copy(t.leafKey(data, i), key)
	copy(t.leafVal(data, i), value)
	setLeafCount(data, n+1)
}

// insertIntoParent inserts (sep, rightID) into the parent chain described
// by path (deepest step last), splitting internal nodes as needed.
func (t *Tree) insertIntoParent(path []pathStep, sep []byte, rightID pager.PageID) error {
	for level := len(path) - 1; level >= 0; level-- {
		step := path[level]
		pg, err := t.pgr.Get(step.id)
		if err != nil {
			return err
		}
		n := internalCount(pg.Data)
		if n < t.branchCap {
			t.internalInsertAt(pg.Data, step.idx, sep, rightID)
			pg.MarkDirty()
			pg.Release()
			return nil
		}

		// Split the internal node. Current layout: n separators,
		// n+1 children, plus the pending (sep, rightID) at step.idx.
		keys := make([][]byte, 0, n+1)
		children := make([]pager.PageID, 0, n+2)
		for i := 0; i <= n; i++ {
			children = append(children, internalChild(pg.Data, i))
		}
		for i := 0; i < n; i++ {
			keys = append(keys, append([]byte(nil), t.internalKey(pg.Data, i)...))
		}
		keys = append(keys[:step.idx], append([][]byte{sep}, keys[step.idx:]...)...)
		children = append(children[:step.idx+1], append([]pager.PageID{rightID}, children[step.idx+1:]...)...)

		mid := len(keys) / 2
		promoted := keys[mid]

		writeInternal(t, pg.Data, keys[:mid], children[:mid+1])
		pg.MarkDirty()

		rpg, err := t.pgr.Alloc()
		if err != nil {
			pg.Release()
			return err
		}
		initInternal(rpg.Data)
		writeInternal(t, rpg.Data, keys[mid+1:], children[mid+1:])
		rpg.MarkDirty()

		sep = promoted
		rightID = rpg.ID
		rpg.Release()
		pg.Release()
	}

	// Root split: grow the tree by one level.
	rootPg, err := t.pgr.Alloc()
	if err != nil {
		return err
	}
	initInternal(rootPg.Data)
	setInternalCount(rootPg.Data, 1)
	setInternalChild(rootPg.Data, 0, t.root)
	setInternalChild(rootPg.Data, 1, rightID)
	copy(t.internalKey(rootPg.Data, 0), sep)
	rootPg.MarkDirty()
	t.root = rootPg.ID
	t.height++
	rootPg.Release()
	return nil
}

// internalInsertAt inserts separator sep at index i with right child id.
func (t *Tree) internalInsertAt(data []byte, i int, sep []byte, id pager.PageID) {
	n := internalCount(data)
	// Shift children (i+1 .. n) right by one slot.
	base := internalHeader
	copy(data[base+(i+2)*8:base+(n+2)*8], data[base+(i+1)*8:base+(n+1)*8])
	setInternalChild(data, i+1, id)
	// Shift keys (i .. n-1) right by one slot.
	kb := t.internalKeyOff(0)
	copy(data[kb+(i+1)*t.keyLen:kb+(n+1)*t.keyLen], data[kb+i*t.keyLen:kb+n*t.keyLen])
	copy(t.internalKey(data, i), sep)
	setInternalCount(data, n+1)
}

func writeInternal(t *Tree, data []byte, keys [][]byte, children []pager.PageID) {
	setInternalCount(data, len(keys))
	for i, id := range children {
		setInternalChild(data, i, id)
	}
	for i, k := range keys {
		copy(t.internalKey(data, i), k)
	}
}
