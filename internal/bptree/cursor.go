package bptree

import (
	"bytes"

	"github.com/hd-index/hdindex/internal/pager"
)

// Cursor iterates leaf entries in key order, in both directions — the
// access pattern of the α-candidate retrieval (§4.1), which walks outward
// from the query key's position along the leaf sibling chain.
//
// A cursor pins at most one leaf page at a time. The Key/Value accessors
// return slices into that page; callers must copy data they retain past
// the next cursor movement. Close the cursor when done.
type Cursor struct {
	t     *Tree
	page  *pager.Page
	idx   int
	valid bool
}

// NewCursor returns an unpositioned cursor.
func (t *Tree) NewCursor() *Cursor {
	return &Cursor{t: t}
}

// Close releases any pinned page. The cursor may be re-Seeked afterwards.
func (c *Cursor) Close() {
	if c.page != nil {
		c.page.Release()
		c.page = nil
	}
	c.valid = false
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current key (a view into the pinned page).
func (c *Cursor) Key() []byte { return c.t.leafKey(c.page.Data, c.idx) }

// Value returns the current value (a view into the pinned page).
func (c *Cursor) Value() []byte { return c.t.leafVal(c.page.Data, c.idx) }

func (c *Cursor) load(id pager.PageID) error {
	if c.page != nil {
		c.page.Release()
		c.page = nil
	}
	if id == 0 {
		c.valid = false
		return nil
	}
	pg, err := c.t.pgr.Get(id)
	if err != nil {
		c.valid = false
		return err
	}
	c.page = pg
	return nil
}

// Seek positions the cursor at the first entry with key >= target
// (the lower bound). If no such entry exists the cursor is invalid but
// SeekForPrev-style access is still possible via Prev on a Last-positioned
// cursor. Returns any I/O error.
func (c *Cursor) Seek(target []byte) error {
	c.Close()
	leaf, err := c.t.descend(target, nil)
	if err != nil {
		return err
	}
	c.page = leaf
	c.idx = c.t.leafLowerBound(leaf.Data, target)
	if c.idx == leafCount(leaf.Data) {
		// All entries here are < target; the lower bound is the first
		// entry of the right sibling (or nothing).
		right := leafRight(leaf.Data)
		if err := c.load(right); err != nil {
			return err
		}
		if c.page == nil {
			return nil
		}
		c.idx = 0
		if leafCount(c.page.Data) == 0 {
			c.valid = false
			return nil
		}
		c.valid = true
		return nil
	}
	c.valid = true
	// Duplicates equal to target may extend into the left sibling when a
	// run of equal keys spans a leaf boundary; walk back to the true
	// lower bound.
	for c.idx == 0 {
		leftID := leafLeft(c.page.Data)
		if leftID == 0 {
			break
		}
		lp, err := c.t.pgr.Get(leftID)
		if err != nil {
			return err
		}
		ln := leafCount(lp.Data)
		if ln == 0 || bytes.Compare(c.t.leafKey(lp.Data, ln-1), target) < 0 {
			lp.Release()
			break
		}
		c.page.Release()
		c.page = lp
		c.idx = c.t.leafLowerBound(lp.Data, target)
	}
	return nil
}

// First positions the cursor at the smallest entry.
func (c *Cursor) First() error {
	c.Close()
	if err := c.load(c.t.firstLeaf); err != nil {
		return err
	}
	for c.page != nil && leafCount(c.page.Data) == 0 {
		if err := c.load(leafRight(c.page.Data)); err != nil {
			return err
		}
	}
	if c.page == nil {
		c.valid = false
		return nil
	}
	c.idx = 0
	c.valid = true
	return nil
}

// Last positions the cursor at the largest entry.
func (c *Cursor) Last() error {
	c.Close()
	if err := c.load(c.t.lastLeaf); err != nil {
		return err
	}
	for c.page != nil && leafCount(c.page.Data) == 0 {
		if err := c.load(leafLeft(c.page.Data)); err != nil {
			return err
		}
	}
	if c.page == nil {
		c.valid = false
		return nil
	}
	c.idx = leafCount(c.page.Data) - 1
	c.valid = true
	return nil
}

// Next advances to the next entry in key order; the cursor becomes
// invalid past the last entry.
func (c *Cursor) Next() error {
	if !c.valid {
		return nil
	}
	c.idx++
	for c.idx >= leafCount(c.page.Data) {
		right := leafRight(c.page.Data)
		if err := c.load(right); err != nil {
			return err
		}
		if c.page == nil {
			return nil
		}
		c.idx = 0
	}
	c.valid = true
	return nil
}

// Prev moves to the previous entry in key order; the cursor becomes
// invalid before the first entry.
func (c *Cursor) Prev() error {
	if !c.valid {
		return nil
	}
	c.idx--
	for c.idx < 0 {
		left := leafLeft(c.page.Data)
		if err := c.load(left); err != nil {
			return err
		}
		if c.page == nil {
			return nil
		}
		c.idx = leafCount(c.page.Data) - 1
	}
	c.valid = true
	return nil
}

// Clone returns an independent cursor at the same position. It is how the
// bidirectional α-scan forks left- and right-moving cursors from the seek
// position.
func (c *Cursor) Clone() (*Cursor, error) {
	n := &Cursor{t: c.t, idx: c.idx, valid: c.valid}
	if c.page != nil {
		pg, err := c.t.pgr.Get(c.page.ID)
		if err != nil {
			return nil, err
		}
		n.page = pg
	}
	return n, nil
}

// Scan invokes fn for each entry with lo <= key <= hi (inclusive bounds),
// stopping early if fn returns false. Used by the iDistance and QALSH
// range probes. The slices passed to fn are views; copy to retain.
func (t *Tree) Scan(lo, hi []byte, fn func(key, value []byte) bool) error {
	c := t.NewCursor()
	defer c.Close()
	if err := c.Seek(lo); err != nil {
		return err
	}
	for c.Valid() {
		if hi != nil && bytes.Compare(c.Key(), hi) > 0 {
			return nil
		}
		if !fn(c.Key(), c.Value()) {
			return nil
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}
