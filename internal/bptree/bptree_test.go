package bptree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"github.com/hd-index/hdindex/internal/pager"
)

func mkTree(t *testing.T, cfg Config, opts pager.Options) (*Tree, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tree.pg")
	opts.Create = true
	pgr, err := pager.Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(pgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pgr.Close() })
	return tr, path
}

func u64key(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func u64val(v uint64) []byte { return u64key(v) }

type kv struct{ k, v uint64 }

func sortedKVs(kvs []kv) ([]kv, *SliceSource) {
	s := append([]kv(nil), kvs...)
	sort.Slice(s, func(i, j int) bool { return s[i].k < s[j].k })
	src := &SliceSource{}
	for _, e := range s {
		src.Keys = append(src.Keys, u64key(e.k))
		src.Values = append(src.Values, u64val(e.v))
	}
	return s, src
}

func TestCreateValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.pg")
	pgr, err := pager.Open(path, pager.Options{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pgr.Close()
	if _, err := Create(pgr, Config{KeyLen: 0, ValLen: 8}); err == nil {
		t.Error("KeyLen=0 must fail")
	}
	if _, err := Create(pgr, Config{KeyLen: 8, ValLen: -1}); err == nil {
		t.Error("ValLen<0 must fail")
	}
	if _, err := Create(pgr, Config{KeyLen: 8, ValLen: 8, LeafCap: 100000}); err == nil {
		t.Error("huge LeafCap must fail")
	}
	if _, err := Create(pgr, Config{KeyLen: 5000, ValLen: 8}); err == nil {
		t.Error("oversized entry must fail")
	}
}

func TestBulkLoadAndScanAll(t *testing.T) {
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 8}, pager.Options{PageSize: 256})
	var kvs []kv
	for i := 0; i < 1000; i++ {
		kvs = append(kvs, kv{uint64(i * 3), uint64(i)})
	}
	want, src := sortedKVs(kvs)
	if err := tr.BulkLoad(src); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", tr.Count())
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d, expected a multi-level tree at page size 256", tr.Height())
	}
	var got []kv
	err := tr.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, kv{binary.BigEndian.Uint64(k), binary.BigEndian.Uint64(v)})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 0}, pager.Options{})
	src := &SliceSource{Keys: [][]byte{u64key(5), u64key(3)}, Values: [][]byte{{}, {}}}
	if err := tr.BulkLoad(src); !errors.Is(err, ErrNotSorted) {
		t.Fatalf("err = %v, want ErrNotSorted", err)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 8}, pager.Options{})
	if err := tr.BulkLoad(&SliceSource{}); err != nil {
		t.Fatal(err)
	}
	c := tr.NewCursor()
	defer c.Close()
	if err := c.First(); err != nil {
		t.Fatal(err)
	}
	if c.Valid() {
		t.Error("cursor valid on empty tree")
	}
	if err := c.Seek(u64key(1)); err != nil {
		t.Fatal(err)
	}
	if c.Valid() {
		t.Error("seek valid on empty tree")
	}
}

func TestSeekLowerBoundSemantics(t *testing.T) {
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 8}, pager.Options{PageSize: 256})
	var kvs []kv
	for i := 0; i < 200; i++ {
		kvs = append(kvs, kv{uint64(i*10 + 5), uint64(i)}) // keys 5,15,25,...
	}
	_, src := sortedKVs(kvs)
	if err := tr.BulkLoad(src); err != nil {
		t.Fatal(err)
	}
	c := tr.NewCursor()
	defer c.Close()
	// Exact hit.
	if err := c.Seek(u64key(45)); err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || binary.BigEndian.Uint64(c.Key()) != 45 {
		t.Fatalf("Seek(45) landed on %v", c.Valid())
	}
	// Between keys: lands on next larger.
	if err := c.Seek(u64key(46)); err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || binary.BigEndian.Uint64(c.Key()) != 55 {
		t.Fatalf("Seek(46) key = %d, want 55", binary.BigEndian.Uint64(c.Key()))
	}
	// Before all keys.
	if err := c.Seek(u64key(0)); err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || binary.BigEndian.Uint64(c.Key()) != 5 {
		t.Fatal("Seek(0) must land on first key")
	}
	// Past all keys.
	if err := c.Seek(u64key(1e9)); err != nil {
		t.Fatal(err)
	}
	if c.Valid() {
		t.Fatal("Seek past end must be invalid")
	}
}

func TestSeekDuplicatesAcrossLeaves(t *testing.T) {
	// Small pages force a run of equal keys to span leaf boundaries; Seek
	// must land on the FIRST duplicate.
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 8}, pager.Options{PageSize: 128})
	var src SliceSource
	src.Keys = append(src.Keys, u64key(1))
	src.Values = append(src.Values, u64val(100))
	for i := 0; i < 50; i++ {
		src.Keys = append(src.Keys, u64key(7))
		src.Values = append(src.Values, u64val(uint64(i)))
	}
	src.Keys = append(src.Keys, u64key(9))
	src.Values = append(src.Values, u64val(200))
	if err := tr.BulkLoad(&src); err != nil {
		t.Fatal(err)
	}
	c := tr.NewCursor()
	defer c.Close()
	if err := c.Seek(u64key(7)); err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || binary.BigEndian.Uint64(c.Key()) != 7 {
		t.Fatal("Seek(7) missed")
	}
	if got := binary.BigEndian.Uint64(c.Value()); got != 0 {
		t.Fatalf("Seek(7) value = %d, want first duplicate (0)", got)
	}
	// All 50 duplicates iterate in insertion order.
	for i := 0; i < 50; i++ {
		if !c.Valid() || binary.BigEndian.Uint64(c.Key()) != 7 {
			t.Fatalf("duplicate %d missing", i)
		}
		if got := binary.BigEndian.Uint64(c.Value()); got != uint64(i) {
			t.Fatalf("duplicate %d value = %d", i, got)
		}
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Valid() || binary.BigEndian.Uint64(c.Key()) != 9 {
		t.Fatal("iteration after duplicates broken")
	}
}

func TestCursorBidirectional(t *testing.T) {
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 0}, pager.Options{PageSize: 128})
	var src SliceSource
	for i := 0; i < 100; i++ {
		src.Keys = append(src.Keys, u64key(uint64(i)))
		src.Values = append(src.Values, []byte{})
	}
	if err := tr.BulkLoad(&src); err != nil {
		t.Fatal(err)
	}
	c := tr.NewCursor()
	defer c.Close()
	if err := c.Seek(u64key(50)); err != nil {
		t.Fatal(err)
	}
	left, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	defer left.Close()
	// Walk right from 50 and left from 49.
	if err := left.Prev(); err != nil {
		t.Fatal(err)
	}
	for want := uint64(50); want < 100; want++ {
		if !c.Valid() || binary.BigEndian.Uint64(c.Key()) != want {
			t.Fatalf("right walk at %d failed", want)
		}
		c.Next()
	}
	if c.Valid() {
		t.Fatal("right walk must end invalid")
	}
	for want := int64(49); want >= 0; want-- {
		if !left.Valid() || binary.BigEndian.Uint64(left.Key()) != uint64(want) {
			t.Fatalf("left walk at %d failed", want)
		}
		left.Prev()
	}
	if left.Valid() {
		t.Fatal("left walk must end invalid")
	}
}

func TestFirstLast(t *testing.T) {
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 0}, pager.Options{PageSize: 128})
	var src SliceSource
	for i := 10; i <= 90; i += 10 {
		src.Keys = append(src.Keys, u64key(uint64(i)))
		src.Values = append(src.Values, []byte{})
	}
	if err := tr.BulkLoad(&src); err != nil {
		t.Fatal(err)
	}
	c := tr.NewCursor()
	defer c.Close()
	c.First()
	if binary.BigEndian.Uint64(c.Key()) != 10 {
		t.Fatal("First broken")
	}
	c.Last()
	if binary.BigEndian.Uint64(c.Key()) != 90 {
		t.Fatal("Last broken")
	}
}

func TestInsertIncremental(t *testing.T) {
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 8}, pager.Options{PageSize: 128})
	rng := rand.New(rand.NewSource(3))
	model := make(map[uint64]uint64)
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(5000))
		v := uint64(i)
		if _, dup := model[k]; dup {
			continue // value model is last-write; skip dups for simplicity here
		}
		model[k] = v
		if err := tr.Insert(u64key(k), u64val(v)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != uint64(len(model)) {
		t.Fatalf("Count = %d, want %d", tr.Count(), len(model))
	}
	// Verify full ordered iteration matches the model.
	keys := make([]uint64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	i := 0
	err := tr.Scan(nil, nil, func(k, v []byte) bool {
		ku := binary.BigEndian.Uint64(k)
		if ku != keys[i] {
			t.Fatalf("pos %d key = %d, want %d", i, ku, keys[i])
		}
		if binary.BigEndian.Uint64(v) != model[ku] {
			t.Fatalf("key %d wrong value", ku)
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Fatalf("iterated %d, want %d", i, len(keys))
	}
}

func TestInsertIntoBulkLoadedTree(t *testing.T) {
	// §3.6: updates land in an already-built index.
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 8}, pager.Options{PageSize: 128})
	var src SliceSource
	for i := 0; i < 500; i++ {
		src.Keys = append(src.Keys, u64key(uint64(i*2)))
		src.Values = append(src.Values, u64val(uint64(i)))
	}
	if err := tr.BulkLoad(&src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(u64key(uint64(i*2+1)), u64val(9999)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != 600 {
		t.Fatalf("Count = %d, want 600", tr.Count())
	}
	prev := int64(-1)
	n := 0
	tr.Scan(nil, nil, func(k, v []byte) bool {
		ku := int64(binary.BigEndian.Uint64(k))
		if ku <= prev {
			t.Fatalf("order violated: %d after %d", ku, prev)
		}
		prev = ku
		n++
		return true
	})
	if n != 600 {
		t.Fatalf("scanned %d entries, want 600", n)
	}
}

func TestPersistenceReopen(t *testing.T) {
	cfg := Config{KeyLen: 8, ValLen: 8}
	path := filepath.Join(t.TempDir(), "tree.pg")
	pgr, err := pager.Open(path, pager.Options{Create: true, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(pgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var src SliceSource
	for i := 0; i < 300; i++ {
		src.Keys = append(src.Keys, u64key(uint64(i)))
		src.Values = append(src.Values, u64val(uint64(i*7)))
	}
	if err := tr.BulkLoad(&src); err != nil {
		t.Fatal(err)
	}
	if err := pgr.Close(); err != nil {
		t.Fatal(err)
	}

	pgr2, err := pager.Open(path, pager.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pgr2.Close()
	tr2, err := Open(pgr2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Count() != 300 || tr2.KeyLen() != 8 || tr2.ValLen() != 8 {
		t.Fatalf("reopened header wrong: count=%d", tr2.Count())
	}
	c := tr2.NewCursor()
	defer c.Close()
	if err := c.Seek(u64key(123)); err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || binary.BigEndian.Uint64(c.Value()) != 123*7 {
		t.Fatal("reopened tree lookup failed")
	}
}

func TestScanRange(t *testing.T) {
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 0}, pager.Options{PageSize: 128})
	var src SliceSource
	for i := 0; i < 100; i++ {
		src.Keys = append(src.Keys, u64key(uint64(i)))
		src.Values = append(src.Values, []byte{})
	}
	if err := tr.BulkLoad(&src); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	tr.Scan(u64key(20), u64key(29), func(k, v []byte) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	})
	if len(got) != 10 || got[0] != 20 || got[9] != 29 {
		t.Fatalf("range scan = %v", got)
	}
	// Early stop.
	n := 0
	tr.Scan(nil, nil, func(k, v []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop failed, n = %d", n)
	}
}

// Model-based randomized test: a mixture of bulk load and inserts must
// agree with a sorted slice under iteration and seeks.
func TestRandomizedAgainstModel(t *testing.T) {
	for _, pageSize := range []int{128, 256, 512} {
		rng := rand.New(rand.NewSource(int64(pageSize)))
		tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 8}, pager.Options{PageSize: pageSize, PoolPages: 8})
		var kvs []kv
		for i := 0; i < 400; i++ {
			kvs = append(kvs, kv{uint64(rng.Intn(10000)), uint64(i)})
		}
		_, src := sortedKVs(kvs)
		if err := tr.BulkLoad(src); err != nil {
			t.Fatal(err)
		}
		model := append([]kv(nil), kvs...)
		for i := 0; i < 300; i++ {
			k := uint64(rng.Intn(10000))
			v := uint64(100000 + i)
			if err := tr.Insert(u64key(k), u64val(v)); err != nil {
				t.Fatal(err)
			}
			model = append(model, kv{k, v})
		}
		sort.SliceStable(model, func(i, j int) bool { return model[i].k < model[j].k })

		// Full iteration must agree on keys (values of duplicates may
		// interleave between bulk and inserted entries, so compare keys
		// plus the multiset of values).
		var gotKeys []uint64
		gotVals := map[uint64]int{}
		tr.Scan(nil, nil, func(k, v []byte) bool {
			gotKeys = append(gotKeys, binary.BigEndian.Uint64(k))
			gotVals[binary.BigEndian.Uint64(v)]++
			return true
		})
		if len(gotKeys) != len(model) {
			t.Fatalf("ps=%d: %d entries, want %d", pageSize, len(gotKeys), len(model))
		}
		for i := range model {
			if gotKeys[i] != model[i].k {
				t.Fatalf("ps=%d pos %d: key %d, want %d", pageSize, i, gotKeys[i], model[i].k)
			}
		}
		for _, e := range model {
			gotVals[e.v]--
		}
		for v, n := range gotVals {
			if n != 0 {
				t.Fatalf("ps=%d: value multiset mismatch at %d (%d)", pageSize, v, n)
			}
		}

		// Random seeks: cursor lower bound must match model lower bound.
		for i := 0; i < 200; i++ {
			target := uint64(rng.Intn(11000))
			c := tr.NewCursor()
			if err := c.Seek(u64key(target)); err != nil {
				t.Fatal(err)
			}
			j := sort.Search(len(model), func(i int) bool { return model[i].k >= target })
			if j == len(model) {
				if c.Valid() {
					t.Fatalf("ps=%d: Seek(%d) should be invalid", pageSize, target)
				}
			} else {
				if !c.Valid() || binary.BigEndian.Uint64(c.Key()) != model[j].k {
					t.Fatalf("ps=%d: Seek(%d) wrong position", pageSize, target)
				}
			}
			c.Close()
		}
	}
}

func TestKeyValueLenValidation(t *testing.T) {
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 4}, pager.Options{})
	if err := tr.Insert([]byte{1}, make([]byte, 4)); !errors.Is(err, ErrKeyLen) {
		t.Error("short key must fail")
	}
	if err := tr.Insert(u64key(1), make([]byte, 3)); !errors.Is(err, ErrValueLen) {
		t.Error("short value must fail")
	}
	src := &SliceSource{Keys: [][]byte{{1, 2}}, Values: [][]byte{make([]byte, 4)}}
	if err := tr.BulkLoad(src); !errors.Is(err, ErrKeyLen) {
		t.Error("bulk short key must fail")
	}
}

func TestLeafCapOverride(t *testing.T) {
	tr, _ := mkTree(t, Config{KeyLen: 8, ValLen: 8, LeafCap: 5}, pager.Options{})
	if tr.LeafCap() != 5 {
		t.Fatalf("LeafCap = %d, want 5", tr.LeafCap())
	}
	var src SliceSource
	for i := 0; i < 23; i++ {
		src.Keys = append(src.Keys, u64key(uint64(i)))
		src.Values = append(src.Values, u64val(0))
	}
	if err := tr.BulkLoad(&src); err != nil {
		t.Fatal(err)
	}
	// 23 entries at 5/leaf = 5 leaves; root must be internal.
	if tr.Height() < 2 {
		t.Fatal("expected multi-level tree with LeafCap=5")
	}
	n := 0
	tr.Scan(nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 23 {
		t.Fatalf("scanned %d, want 23", n)
	}
}

func TestVariableLengthKeysOrderedAsBytes(t *testing.T) {
	// Hilbert keys are multi-byte; confirm byte order is respected.
	tr, _ := mkTree(t, Config{KeyLen: 4, ValLen: 0}, pager.Options{})
	keys := [][]byte{{0, 0, 0, 1}, {0, 0, 1, 0}, {0, 1, 0, 0}, {1, 0, 0, 0}}
	src := &SliceSource{Keys: keys, Values: [][]byte{{}, {}, {}, {}}}
	if err := tr.BulkLoad(src); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	tr.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	})
	for i := range keys {
		if !bytes.Equal(got[i], keys[i]) {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		path := filepath.Join(b.TempDir(), "bl.pg")
		pgr, _ := pager.Open(path, pager.Options{Create: true})
		tr, _ := Create(pgr, Config{KeyLen: 16, ValLen: 48})
		var src SliceSource
		key := make([]byte, 16)
		for j := 0; j < 10000; j++ {
			binary.BigEndian.PutUint64(key[8:], uint64(j))
			src.Keys = append(src.Keys, append([]byte(nil), key...))
			src.Values = append(src.Values, make([]byte, 48))
		}
		b.StartTimer()
		if err := tr.BulkLoad(&src); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		pgr.Close()
	}
}

func BenchmarkSeek(b *testing.B) {
	path := filepath.Join(b.TempDir(), "seek.pg")
	pgr, _ := pager.Open(path, pager.Options{Create: true})
	defer pgr.Close()
	tr, _ := Create(pgr, Config{KeyLen: 8, ValLen: 8})
	var src SliceSource
	for j := 0; j < 100000; j++ {
		src.Keys = append(src.Keys, u64key(uint64(j)))
		src.Values = append(src.Values, u64val(uint64(j)))
	}
	if err := tr.BulkLoad(&src); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	c := tr.NewCursor()
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Seek(u64key(uint64(rng.Intn(100000))))
	}
}
