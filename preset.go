package hdindex

import "github.com/hd-index/hdindex/internal/core"

// Preset names a first-class quality level of the filter cascade —
// "exact", "balanced", "fast", or "auto". A preset is nothing but a
// resolved option set against the built parameters: a request carrying
// a preset is bit-identical to the same request with the preset's
// knobs spelled out. See core's preset table for the semantics; "auto"
// is resolved by the serving layer (the SLO tuner / degradation), not
// here.
type Preset = core.Preset

// The named presets, re-exported for callers of PresetOptions.
const (
	PresetExact    = core.PresetExact
	PresetBalanced = core.PresetBalanced
	PresetFast     = core.PresetFast
	PresetAuto     = core.PresetAuto
)

// ParsePreset validates a preset name from a request or config file;
// unknown names are ErrBadOptions.
func ParsePreset(s string) (Preset, error) { return core.ParsePreset(s) }

// PresetOptions resolves a named preset against this index's built
// parameters for a query asking k neighbours, returning the explicit
// per-query options the preset stands for (empty for "balanced" — the
// built defaults). PresetAuto has no fixed expansion and returns
// ErrBadOptions; the serving layer resolves it through the tuner.
func (i *Index) PresetOptions(p Preset, k int) ([]QueryOption, error) {
	o, err := p.Options(i.ix.Params(), k)
	if err != nil {
		return nil, err
	}
	var opts []QueryOption
	if o.Alpha > 0 {
		opts = append(opts, WithAlpha(o.Alpha))
	}
	if o.Beta > 0 {
		opts = append(opts, WithBeta(o.Beta))
	}
	if o.Gamma > 0 {
		opts = append(opts, WithGamma(o.Gamma))
	}
	return opts, nil
}
