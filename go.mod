module github.com/hd-index/hdindex

go 1.24
