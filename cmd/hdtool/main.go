// Command hdtool builds, inspects and queries HD-Index structures on
// disk.
//
// Usage:
//
//	hdtool build -data vectors.fvecs -index ./my.index [-tau 8 -omega 16 -m 10]
//	hdtool query -index ./my.index -queries q.fvecs -k 10 [-out results.ivecs]
//	hdtool info  -index ./my.index
//	hdtool tune  -frontier frontier.json -slo "recall>=0.98"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/shard"
	"github.com/hd-index/hdindex/internal/slo"
	"github.com/hd-index/hdindex/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "tune":
		err = runTune(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdtool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  hdtool build -data vectors.fvecs -index DIR [-shards N] [-tau N -omega N -m N -alpha N -gamma N -ptolemaic]
  hdtool query -index DIR -queries q.fvecs -k K [-out results.ivecs] [-parallel]
               [-alpha N -gamma N -ptolemaic=BOOL -stats]
  hdtool info  -index DIR
  hdtool tune  -frontier frontier.json [-slo "recall>=0.98" | -slo "p99<=2ms"]`)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	dataPath := fs.String("data", "", "fvecs file with the dataset")
	indexDir := fs.String("index", "", "output index directory")
	tau := fs.Int("tau", 0, "number of RDB-trees (0 = paper default)")
	omega := fs.Int("omega", 0, "Hilbert order (0 = default)")
	m := fs.Int("m", 0, "reference objects (0 = default 10)")
	alpha := fs.Int("alpha", 0, "candidates per tree (0 = default)")
	gamma := fs.Int("gamma", 0, "filter survivors per tree (0 = alpha/4)")
	pto := fs.Bool("ptolemaic", false, "enable the Ptolemaic filter")
	seed := fs.Int64("seed", 42, "random seed")
	shards := fs.Int("shards", 0, "split the index into N concurrently built shards (0 = single index)")
	fs.Parse(args)
	if *dataPath == "" || *indexDir == "" {
		return errors.New("build: -data and -index are required")
	}
	// The flat reader keeps the dataset in one backing array — at
	// million-vector scale that halves load-time heap overhead vs one
	// slice per vector; Rows only adds aliasing headers.
	flat, dim, err := data.ReadFvecsFlat(*dataPath)
	if err != nil {
		return err
	}
	if len(flat) == 0 {
		return fmt.Errorf("build: %s holds no vectors", *dataPath)
	}
	vectors := data.Rows(flat, dim)
	fmt.Printf("read %d vectors of %d dims\n", len(vectors), dim)
	// Ctrl-C cancels the build cleanly: no commit point is written, so
	// a later Open rejects the partial directory instead of serving it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	t0 := time.Now()
	ix, err := hdindex.BuildContext(ctx, *indexDir, vectors, hdindex.Options{
		Tau: *tau, Omega: *omega, M: *m,
		Alpha: *alpha, Gamma: *gamma, UsePtolemaic: *pto, Seed: *seed,
		Shards: *shards,
	})
	if err != nil {
		return err
	}
	defer ix.Close()
	layout := "single index"
	if *shards > 0 {
		layout = fmt.Sprintf("%d shards", *shards)
	}
	fmt.Printf("built %s in %v, %d bytes on disk\n", layout, time.Since(t0).Round(time.Millisecond), ix.SizeOnDisk())
	if bs := ix.BuildStats(); bs != nil {
		fmt.Printf("build phases (ms): refdists=%.1f encode=%.1f sort=%.1f bulkload=%.1f (total %.1f, %d allocs)\n",
			bs.RefDistsMS, bs.EncodeMS, bs.SortMS, bs.BulkLoadMS, bs.TotalMS, bs.Allocs)
	}
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	indexDir := fs.String("index", "", "index directory")
	queriesPath := fs.String("queries", "", "fvecs file with queries")
	k := fs.Int("k", 10, "neighbours to return")
	out := fs.String("out", "", "optional ivecs output of result ids")
	parallel := fs.Bool("parallel", false, "search trees in parallel")
	alpha := fs.Int("alpha", 0, "per-query override of the leaf candidates per tree (0 = built default)")
	gamma := fs.Int("gamma", 0, "per-query override of the filter survivors per tree (0 = built default)")
	pto := fs.Bool("ptolemaic", false, "per-query Ptolemaic filter override (only applied when the flag is given)")
	stats := fs.Bool("stats", false, "print per-query work counters (candidates, page reads, hit ratio) and the per-phase span breakdown")
	fs.Parse(args)
	if *indexDir == "" || *queriesPath == "" {
		return errors.New("query: -index and -queries are required")
	}
	// Negative knobs are an explicit error everywhere else (server,
	// library); the CLI must not silently read them as "unset".
	if *alpha < 0 || *gamma < 0 {
		return fmt.Errorf("query: -alpha and -gamma must be >= 0, got %d/%d", *alpha, *gamma)
	}
	// A bool flag cannot distinguish "absent" from "false" by value, and
	// -ptolemaic=false (forcing the filter OFF on an index built with
	// it) is a meaningful request — so flag presence is what arms the
	// override.
	var opts []hdindex.QueryOption
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "ptolemaic" {
			opts = append(opts, hdindex.WithPtolemaic(*pto))
		}
	})
	if *alpha > 0 {
		opts = append(opts, hdindex.WithAlpha(*alpha))
	}
	if *gamma > 0 {
		opts = append(opts, hdindex.WithGamma(*gamma))
	}
	if *stats {
		opts = append(opts, hdindex.WithStats())
	}
	ix, err := hdindex.Open(*indexDir, hdindex.Options{Parallel: *parallel})
	if err != nil {
		return err
	}
	defer ix.Close()
	qflat, qdim, err := data.ReadFvecsFlat(*queriesPath)
	if err != nil {
		return err
	}
	if len(qflat) == 0 {
		return fmt.Errorf("query: %s holds no vectors", *queriesPath)
	}
	queries := data.Rows(qflat, qdim)
	ctx := context.Background()
	results := make([][]uint64, len(queries))
	var candidates, treeEntries, pageReads, pageHits, pageMisses uint64
	var phases telemetry.PhaseNS
	var effective *hdindex.Stats
	t0 := time.Now()
	for qi, q := range queries {
		resp, err := ix.Query(ctx, q, *k, opts...)
		if err != nil {
			return err
		}
		ids := make([]uint64, len(resp.Results))
		for i, r := range resp.Results {
			ids[i] = r.ID
		}
		results[qi] = ids
		if resp.Stats != nil {
			candidates += uint64(resp.Stats.Candidates)
			treeEntries += uint64(resp.Stats.TreeEntries)
			pageReads += resp.Stats.PageReads
			pageHits += resp.Stats.PageHits
			pageMisses += resp.Stats.PageMisses
			phases.Add(resp.Stats.Phases)
			effective = resp.Stats
		}
	}
	elapsed := time.Since(t0)
	fmt.Printf("%d queries, k=%d: %.3f ms/query\n",
		len(queries), *k, float64(elapsed.Microseconds())/1000/float64(len(queries)))
	if *stats && effective != nil {
		nq := float64(len(queries))
		fmt.Printf("effective cascade: alpha=%d beta=%d gamma=%d ptolemaic=%v\n",
			effective.Alpha, effective.Beta, effective.Gamma, effective.Ptolemaic)
		hitRatio := 0.0
		if total := pageHits + pageMisses; total > 0 {
			hitRatio = float64(pageHits) / float64(total)
		}
		fmt.Printf("per query: %.1f candidates, %.1f tree entries, %.1f page reads, hit ratio %.3f\n",
			float64(candidates)/nq, float64(treeEntries)/nq, float64(pageReads)/nq, hitRatio)
		if total := phases.Total(); total > 0 {
			fmt.Printf("phase breakdown (mean per query):\n")
			for i := range phases {
				ph := telemetry.Phase(i)
				ns := phases[i]
				fmt.Printf("  %-14s %8.1f us  %5.1f%%\n",
					ph, float64(ns)/1e3/nq, 100*float64(ns)/float64(total))
			}
		}
	}
	for qi, ids := range results {
		if qi >= 5 {
			fmt.Printf("... (%d more)\n", len(results)-5)
			break
		}
		fmt.Printf("query %d: %v\n", qi, ids)
	}
	if *out != "" {
		if err := data.WriteIvecs(*out, results); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	indexDir := fs.String("index", "", "index directory")
	fs.Parse(args)
	if *indexDir == "" {
		return errors.New("info: -index is required")
	}
	ix, err := hdindex.Open(*indexDir, hdindex.Options{})
	if err != nil {
		return err
	}
	defer ix.Close()
	fmt.Printf("vectors:       %d\n", ix.Count())
	fmt.Printf("dimensions:    %d\n", ix.Dim())
	fmt.Printf("deleted:       %d\n", ix.DeletedCount())
	fmt.Printf("size on disk:  %d bytes (%.1f MB)\n", ix.SizeOnDisk(), float64(ix.SizeOnDisk())/(1<<20))

	if !shard.IsSharded(*indexDir) {
		fmt.Printf("layout:        single index (legacy)\n")
		return nil
	}
	man, err := shard.ReadManifest(*indexDir)
	if err != nil {
		return err
	}
	fmt.Printf("layout:        sharded (manifest v%d)\n", man.FormatVersion)
	fmt.Printf("created:       %s\n", time.Unix(man.CreatedUnix, 0).UTC().Format(time.RFC3339))
	fmt.Printf("shards:        %d\n", man.Shards)
	for _, sh := range ix.Shards() {
		fmt.Printf("  shard-%02d:    %d vectors, %d deleted, %d bytes\n",
			sh.ID, sh.Count, sh.Deleted, sh.SizeOnDisk)
	}
	return nil
}

// runTune inspects a frontier artifact offline: it prints the measured
// operating points and, with -slo, the point the serving tuner would
// pick for that target — the dry-run an operator does before wiring
// `hdserve -slo -frontier` up.
func runTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	frontierPath := fs.String("frontier", "", "frontier artifact from hdbench -sweep -sweep-out")
	sloTarget := fs.String("slo", "", `target to resolve, e.g. "recall>=0.98" or "p99<=2ms"`)
	fs.Parse(args)
	if *frontierPath == "" {
		return errors.New("tune: -frontier is required")
	}
	f, err := slo.ReadFrontier(*frontierPath)
	if err != nil {
		return err
	}
	fmt.Printf("frontier: %s (dataset %q, k=%d, %d points)\n",
		*frontierPath, f.Dataset, f.K, len(f.Points))
	fmt.Printf("  %8s %8s %14s %14s %8s %6s\n", "alpha", "gamma", "mean_query_us", "p99_query_us", "recall", "live")
	for _, p := range f.Points {
		live := ""
		if p.Live {
			live = "yes"
		}
		fmt.Printf("  %8d %8d %14.1f %14.1f %8.4f %6s\n",
			p.Alpha, p.Gamma, p.MeanQueryUS, p.P99QueryUS, p.Recall, live)
	}
	if *sloTarget == "" {
		return nil
	}
	target, err := slo.ParseTarget(*sloTarget)
	if err != nil {
		return err
	}
	tuner, err := slo.NewTuner(f, slo.Config{Target: target})
	if err != nil {
		return err
	}
	ch := tuner.Current()
	fmt.Printf("\ntarget %s -> alpha=%d gamma=%d (mean %.1fus, p99 %.1fus, recall %.4f)\n",
		target, ch.Alpha, ch.Gamma, ch.Point.MeanQueryUS, ch.Point.P99QueryUS, ch.Point.Recall)
	fmt.Printf("  %s\n", ch.Reason)
	if ch.SLOUnmet {
		fmt.Printf("  WARNING: no frontier point satisfies the target (slo_unmet)\n")
	}
	return nil
}
