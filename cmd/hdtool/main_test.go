package main

import (
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/shard"
)

func TestBuildQueryInfoPipeline(t *testing.T) {
	tmp := t.TempDir()
	ds := data.SIFTLike(600, 1)
	queries := ds.PerturbedQueries(4, 0.01, 2)

	dataPath := filepath.Join(tmp, "d.fvecs")
	if err := data.WriteFvecs(dataPath, ds.Vectors); err != nil {
		t.Fatal(err)
	}
	qPath := filepath.Join(tmp, "q.fvecs")
	if err := data.WriteFvecs(qPath, queries); err != nil {
		t.Fatal(err)
	}
	indexDir := filepath.Join(tmp, "ix")

	if err := runBuild([]string{
		"-data", dataPath, "-index", indexDir,
		"-tau", "8", "-omega", "8", "-m", "5", "-alpha", "256", "-gamma", "64",
	}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := runInfo([]string{"-index", indexDir}); err != nil {
		t.Fatalf("info: %v", err)
	}
	outPath := filepath.Join(tmp, "r.ivecs")
	if err := runQuery([]string{
		"-index", indexDir, "-queries", qPath, "-k", "5", "-out", outPath,
	}); err != nil {
		t.Fatalf("query: %v", err)
	}
	rows, err := data.ReadIvecs(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(rows[0]) != 5 {
		t.Fatalf("results shape = %dx%d", len(rows), len(rows[0]))
	}

	// Per-query tuning flags share the new options plumbing: the
	// override must be accepted on the already-built index, -stats must
	// print the work counters, and an inconsistent cascade must fail.
	if err := runQuery([]string{
		"-index", indexDir, "-queries", qPath, "-k", "5",
		"-alpha", "128", "-gamma", "32", "-ptolemaic", "-stats",
	}); err != nil {
		t.Fatalf("tuned query: %v", err)
	}
	if err := runQuery([]string{
		"-index", indexDir, "-queries", qPath, "-k", "5",
		"-alpha", "16", "-gamma", "64",
	}); err == nil {
		t.Fatal("widening cascade must fail")
	}
	if err := runQuery([]string{
		"-index", indexDir, "-queries", qPath, "-k", "5", "-alpha", "-5",
	}); err == nil {
		t.Fatal("negative -alpha must fail, not silently read as unset")
	}
}

// The same pipeline must work against a sharded layout: build with
// -shards, info prints the breakdown, query auto-detects the manifest.
func TestShardedPipeline(t *testing.T) {
	tmp := t.TempDir()
	ds := data.SIFTLike(600, 1)
	queries := ds.PerturbedQueries(4, 0.01, 2)

	dataPath := filepath.Join(tmp, "d.fvecs")
	if err := data.WriteFvecs(dataPath, ds.Vectors); err != nil {
		t.Fatal(err)
	}
	qPath := filepath.Join(tmp, "q.fvecs")
	if err := data.WriteFvecs(qPath, queries); err != nil {
		t.Fatal(err)
	}
	indexDir := filepath.Join(tmp, "ix")

	if err := runBuild([]string{
		"-data", dataPath, "-index", indexDir, "-shards", "4",
		"-tau", "8", "-omega", "8", "-m", "5", "-alpha", "256", "-gamma", "64",
	}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if !shard.IsSharded(indexDir) {
		t.Fatal("build -shards did not write a manifest layout")
	}
	if err := runInfo([]string{"-index", indexDir}); err != nil {
		t.Fatalf("info: %v", err)
	}
	outPath := filepath.Join(tmp, "r.ivecs")
	if err := runQuery([]string{
		"-index", indexDir, "-queries", qPath, "-k", "5", "-out", outPath,
	}); err != nil {
		t.Fatalf("query: %v", err)
	}
	rows, err := data.ReadIvecs(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(rows[0]) != 5 {
		t.Fatalf("results shape = %dx%d", len(rows), len(rows[0]))
	}
}

func TestArgValidation(t *testing.T) {
	if err := runBuild([]string{}); err == nil {
		t.Error("build without args must fail")
	}
	if err := runQuery([]string{}); err == nil {
		t.Error("query without args must fail")
	}
	if err := runInfo([]string{}); err == nil {
		t.Error("info without args must fail")
	}
	if err := runBuild([]string{"-data", "/nonexistent.fvecs", "-index", t.TempDir()}); err == nil {
		t.Error("missing data file must fail")
	}
	if err := runInfo([]string{"-index", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("missing index must fail")
	}
}
