// Command hdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	hdbench -exp fig8 -scale 1 -queries 50
//	hdbench -exp all
//	hdbench -snapshot out.json -sweep alpha=512,1024,2048
//	hdbench -list
//
// Each experiment prints the same rows/series the corresponding table or
// figure of the paper reports (see EXPERIMENTS.md for the mapping and
// the recorded full-scale outputs).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hd-index/hdindex/internal/bench"
	"github.com/hd-index/hdindex/internal/slo"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list       = flag.Bool("list", false, "list available experiments")
		scale      = flag.Float64("scale", 1.0, "dataset scale multiplier")
		queries    = flag.Int("queries", 50, "queries per dataset")
		k          = flag.Int("k", 100, "neighbours for MAP@k experiments")
		workdir    = flag.String("workdir", "", "scratch directory for on-disk indexes")
		seed       = flag.Int64("seed", 42, "random seed")
		snapshot   = flag.String("snapshot", "", "write a machine-readable HD-Index perf snapshot (JSON) to this file and exit")
		shards     = flag.Int("shards", 0, "build the snapshot index as a sharded layout with N shards (0 = single index)")
		buildscale = flag.Float64("buildscale", 0, "add build-only rows to the snapshot at this dataset scale (0 = none; 1 = full harness size)")
		sweep      = flag.String("sweep", "", "walk a per-query knob over the built index and add recall/latency frontier rows to the snapshot (alpha=a1,a2,... or gamma=g1,g2,...)")
		ingest     = flag.Int("ingest", 0, "add mixed insert/search rows to the snapshot: this many concurrent WAL-durable inserts per dataset, with the flush-per-insert comparison (0 = none)")
		overload   = flag.Bool("overload", false, "add overload-storm rows to the snapshot: serve each dataset over HTTP with admission control on at ~4x the sustainable rate and report shed rate, accepted p99, degraded fraction")
		clusterRow = flag.Bool("cluster", false, "add cluster-serving rows to the snapshot: serve each dataset both in-process and as a coordinator-fronted cluster of per-shard servers and report qps/p99, hedged fraction, failover behaviour")
		tiered     = flag.Bool("tiered", false, "add quality-tier rows to the snapshot: each named preset (exact/balanced/fast) plus the SLO tuner's auto choice measured on the built index")
		sweepOut   = flag.String("sweep-out", "", "also write the first dataset's sweep rows as a frontier artifact (JSON) the server's SLO tuner loads (-frontier); requires -sweep")
	)
	flag.Parse()

	if *list {
		reg := bench.Registry()
		fmt.Println("available experiments:")
		for _, id := range bench.IDs() {
			fmt.Printf("  %-18s %s\n", id, reg[id].Description)
		}
		return
	}
	cfg := bench.Config{
		Scale:      *scale,
		Queries:    *queries,
		K:          *k,
		WorkDir:    *workdir,
		Seed:       *seed,
		Shards:     *shards,
		BuildScale: *buildscale,
		Ingest:     *ingest,
		Overload:   *overload,
		Cluster:    *clusterRow,
		Tiered:     *tiered,
	}

	// The experiment runners always measure the monolithic index (they
	// reproduce the paper); only the snapshot consults -shards, and only
	// positive values select the sharded layout. Reject anything else
	// rather than silently measuring the wrong layout.
	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "hdbench: -shards must be >= 0")
		os.Exit(2)
	}
	if *shards > 0 && *snapshot == "" {
		fmt.Fprintln(os.Stderr, "hdbench: -shards only applies to -snapshot")
		os.Exit(2)
	}
	if *buildscale < 0 {
		fmt.Fprintln(os.Stderr, "hdbench: -buildscale must be >= 0")
		os.Exit(2)
	}
	if *buildscale > 0 && *snapshot == "" {
		fmt.Fprintln(os.Stderr, "hdbench: -buildscale only applies to -snapshot")
		os.Exit(2)
	}
	if *ingest < 0 {
		fmt.Fprintln(os.Stderr, "hdbench: -ingest must be >= 0")
		os.Exit(2)
	}
	if *ingest > 0 && *snapshot == "" {
		fmt.Fprintln(os.Stderr, "hdbench: -ingest only applies to -snapshot")
		os.Exit(2)
	}
	if *overload && *snapshot == "" {
		fmt.Fprintln(os.Stderr, "hdbench: -overload only applies to -snapshot")
		os.Exit(2)
	}
	if *clusterRow && *snapshot == "" {
		fmt.Fprintln(os.Stderr, "hdbench: -cluster only applies to -snapshot")
		os.Exit(2)
	}
	if *tiered && *snapshot == "" {
		fmt.Fprintln(os.Stderr, "hdbench: -tiered only applies to -snapshot")
		os.Exit(2)
	}
	if *sweepOut != "" && *sweep == "" {
		fmt.Fprintln(os.Stderr, "hdbench: -sweep-out requires -sweep")
		os.Exit(2)
	}
	if *sweep != "" {
		if *snapshot == "" {
			fmt.Fprintln(os.Stderr, "hdbench: -sweep only applies to -snapshot")
			os.Exit(2)
		}
		spec, err := bench.ParseSweep(*sweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: %v\n", err)
			os.Exit(2)
		}
		cfg.Sweep = spec
	}
	if *snapshot != "" {
		if *exp != "" {
			fmt.Fprintln(os.Stderr, "hdbench: -snapshot and -exp are mutually exclusive")
			os.Exit(2)
		}
		snap, err := bench.RunSnapshot(cfg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: snapshot: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*snapshot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: %v\n", err)
			os.Exit(1)
		}
		werr := snap.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "hdbench: %v\n", werr)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *snapshot)
		// The frontier rows also print to stdout: the point of a sweep
		// is to read the curve, not to open a JSON file.
		if len(snap.Sweep) > 0 {
			fmt.Printf("\nrecall/latency frontier (%s, one built index, per-query overrides):\n", snap.Config.Sweep)
			fmt.Printf("  %-10s %-6s %8s %12s %8s %8s %12s %12s\n",
				"dataset", "param", "value", "query_us", "recall", "map", "candidates", "page_reads")
			for _, row := range snap.Sweep {
				fmt.Printf("  %-10s %-6s %8d %12.1f %8.4f %8.4f %12.1f %12.1f\n",
					row.Dataset, row.Param, row.Value, row.MeanQueryUS, row.Recall, row.MAP,
					row.CandidatesPerQuery, row.PageReadsPerQuery)
			}
		}
		// The frontier artifact records the first dataset's rows: one
		// artifact describes one built index, and the first dataset is
		// the one the serving smoke (make tune-smoke) builds.
		if *sweepOut != "" && len(snap.Sweep) > 0 {
			first := snap.Sweep[0].Dataset
			f := bench.Frontier(snap.Sweep, first, cfg.K)
			if err := slo.WriteFrontier(*sweepOut, f); err != nil {
				fmt.Fprintf(os.Stderr, "hdbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d points, dataset %s)\n", *sweepOut, len(f.Points), first)
		}
		if len(snap.Ingest) > 0 {
			bench.PrintIngest(snap.Ingest)
		}
		if len(snap.Overload) > 0 {
			bench.PrintOverload(snap.Overload)
		}
		if len(snap.Cluster) > 0 {
			bench.PrintCluster(snap.Cluster)
		}
		if len(snap.Tiered) > 0 {
			bench.PrintTiered(snap.Tiered)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "hdbench: -exp required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		fmt.Printf("\n================ %s ================\n", id)
		t0 := time.Now()
		if err := bench.Run(id, os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", id, time.Since(t0).Round(time.Millisecond))
	}
}
