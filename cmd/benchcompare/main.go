// Command benchcompare diffs two hdbench -snapshot JSON files and
// prints per-dataset deltas for the serving-relevant metrics — the
// report CI attaches next to each fresh snapshot so a perf regression
// (or win) against the committed BENCH_PR*.json baseline is visible
// without downloading artifacts and diffing by hand.
//
// Usage:
//
//	benchcompare [-gate [-threshold PCT]] BASELINE.json NEW.json
//
// By default the comparison is report-only: the exit status reflects
// only whether the inputs could be read, never the direction of the
// deltas. With -gate, the exit status becomes a soft regression gate:
// non-zero when mean_query_us, p99_query_us, or batch_qps regresses by
// more than -threshold percent (default 15) on any dataset both
// snapshots measured. The gated metrics are the least noisy of the
// snapshot; the threshold absorbs shared-runner jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/hd-index/hdindex/internal/bench"
)

func load(path string) (*bench.Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s bench.Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// metric is one compared field; higherBetter flips the sign annotation,
// not the arithmetic.
type metric struct {
	name         string
	get          func(bench.DatasetResult) float64
	higherBetter bool
}

var metrics = []metric{
	{"build_ms", func(d bench.DatasetResult) float64 { return d.BuildMS }, false},
	{"build_allocs", func(d bench.DatasetResult) float64 { return d.BuildAllocs }, false},
	{"mean_query_us", func(d bench.DatasetResult) float64 { return d.MeanQueryUS }, false},
	{"p50_query_us", func(d bench.DatasetResult) float64 { return d.P50QueryUS }, false},
	{"p95_query_us", func(d bench.DatasetResult) float64 { return d.P95QueryUS }, false},
	{"p99_query_us", func(d bench.DatasetResult) float64 { return d.P99QueryUS }, false},
	{"batch_qps", func(d bench.DatasetResult) float64 { return d.BatchQPS }, true},
	{"batch_p99_us", func(d bench.DatasetResult) float64 { return d.BatchP99US }, false},
	{"parallel_qps", func(d bench.DatasetResult) float64 { return d.ParallelQPS }, true},
	{"page_reads_per_query", func(d bench.DatasetResult) float64 { return d.PageReadsPerQuery }, false},
	{"hit_ratio", func(d bench.DatasetResult) float64 { return d.HitRatio }, true},
	{"recall", func(d bench.DatasetResult) float64 { return d.Recall }, true},
	{"map", func(d bench.DatasetResult) float64 { return d.MAP }, true},
	{"mean_ratio", func(d bench.DatasetResult) float64 { return d.MeanRatio }, false},
}

func main() {
	gate := flag.Bool("gate", false, "exit non-zero when a gated metric (mean_query_us, p99_query_us, batch_qps) regresses past -threshold on any shared dataset")
	threshold := flag.Float64("threshold", 15, "regression percentage the -gate tolerates")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare [-gate [-threshold PCT]] BASELINE.json NEW.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(1)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("baseline: %s (%s)\n", flag.Arg(0), base.GoVersion)
	fmt.Printf("new:      %s (%s)\n", flag.Arg(1), fresh.GoVersion)
	// Compare only the workload knobs: ParallelClients is absent from
	// pre-PR3 baselines, BuildScale from pre-PR4 ones, Sweep from
	// pre-PR5 ones, Ingest from pre-PR6 ones, Overload from pre-PR8
	// ones, Cluster from pre-PR9 ones, and Tiered from pre-PR10 ones;
	// none of them changes the sequential query numbers (the sweep,
	// ingest, overload, cluster, and tiered phases run strictly after
	// every baseline measurement).
	bc, fc := base.Config, fresh.Config
	bc.ParallelClients, fc.ParallelClients = 0, 0
	bc.BuildScale, fc.BuildScale = 0, 0
	bc.Sweep, fc.Sweep = "", ""
	bc.Ingest, fc.Ingest = 0, 0
	bc.Overload, fc.Overload = false, false
	bc.Cluster, fc.Cluster = false, false
	bc.Tiered, fc.Tiered = false, false
	if bc != fc {
		fmt.Printf("note: configs differ (baseline %+v, new %+v) — deltas are indicative only\n",
			base.Config, fresh.Config)
	}

	// The gate watches the steadiest serving metrics plus the query tail;
	// the other rows stay informational (build times and alloc counts
	// swing too much on shared runners to block on; p50/p95 are covered
	// transitively by the mean and p99).
	gated := map[string]bool{"mean_query_us": true, "batch_qps": true, "p99_query_us": true}
	var regressions []string

	byName := make(map[string]bench.DatasetResult, len(base.Datasets))
	for _, d := range base.Datasets {
		byName[d.Dataset] = d
	}
	for _, nw := range fresh.Datasets {
		old, ok := byName[nw.Dataset]
		if !ok {
			fmt.Printf("\n%s: not in baseline, skipping\n", nw.Dataset)
			continue
		}
		fmt.Printf("\n%s (n=%d, dim=%d)\n", nw.Dataset, nw.N, nw.Dim)
		fmt.Printf("  %-22s %14s %14s %10s\n", "metric", "baseline", "new", "delta")
		for _, m := range metrics {
			ov, nv := m.get(old), m.get(nw)
			printDelta(m.name, ov, nv, m.higherBetter)
			if !*gate || !gated[m.name] || ov == 0 {
				continue
			}
			delta := (nv - ov) / ov * 100
			worse := delta
			if m.higherBetter {
				worse = -delta
			}
			if worse > *threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%%)", nw.Dataset, m.name, ov, nv, delta))
			}
		}
	}

	// Build-only rows (BuildScale snapshots, PR4+). Older baselines
	// have none: the fresh rows then print without deltas. Unlike the
	// query metrics, these rows DO depend on BuildScale — rows measured
	// at different scales are different workloads, so deltas across
	// them would be phantom regressions; suppress them instead.
	if len(fresh.Build) > 0 {
		buildByName := make(map[string]bench.BuildResult, len(base.Build))
		if len(base.Build) > 0 && base.Config.BuildScale != fresh.Config.BuildScale {
			fmt.Printf("\nnote: build scales differ (baseline %g, new %g) — build rows printed without deltas\n",
				base.Config.BuildScale, fresh.Config.BuildScale)
		} else {
			for _, b := range base.Build {
				buildByName[b.Dataset] = b
			}
		}
		for _, nw := range fresh.Build {
			fmt.Printf("\n%s build @ scale %.3g (n=%d, dim=%d)\n", nw.Dataset, fresh.Config.BuildScale, nw.N, nw.Dim)
			fmt.Printf("  %-22s %14s %14s %10s\n", "metric", "baseline", "new", "delta")
			old := buildByName[nw.Dataset] // zero value when absent: rows print as "new"
			printDelta("build_ms", old.BuildMS, nw.BuildMS, false)
			printDelta("build_allocs", float64(old.BuildAllocs), float64(nw.BuildAllocs), false)
			printDelta("peak_heap_mb", old.PeakHeapMB, nw.PeakHeapMB, false)
			if nw.Phases != nil {
				var op bench.BuildPhaseMS
				if old.Phases != nil {
					op = *old.Phases
				}
				printDelta("phase_refdists_ms", op.RefDists, nw.Phases.RefDists, false)
				printDelta("phase_encode_ms", op.Encode, nw.Phases.Encode, false)
				printDelta("phase_sort_ms", op.Sort, nw.Phases.Sort, false)
				printDelta("phase_bulkload_ms", op.BulkLoad, nw.Phases.BulkLoad, false)
			}
		}
	}

	// Frontier rows (per-query sweep snapshots, PR5+), matched on
	// (dataset, param, value). Points only one side measured print
	// without deltas — a changed sweep spec is different operating
	// points, not a regression.
	if len(fresh.Sweep) > 0 {
		sweepByKey := make(map[string]bench.SweepRow, len(base.Sweep))
		for _, row := range base.Sweep {
			sweepByKey[fmt.Sprintf("%s/%s=%d", row.Dataset, row.Param, row.Value)] = row
		}
		for _, nw := range fresh.Sweep {
			fmt.Printf("\n%s sweep %s=%d\n", nw.Dataset, nw.Param, nw.Value)
			fmt.Printf("  %-22s %14s %14s %10s\n", "metric", "baseline", "new", "delta")
			old := sweepByKey[fmt.Sprintf("%s/%s=%d", nw.Dataset, nw.Param, nw.Value)]
			printDelta("mean_query_us", old.MeanQueryUS, nw.MeanQueryUS, false)
			printDelta("recall", old.Recall, nw.Recall, true)
			printDelta("map", old.MAP, nw.MAP, true)
			printDelta("candidates_per_query", old.CandidatesPerQuery, nw.CandidatesPerQuery, false)
			printDelta("page_reads_per_query", old.PageReadsPerQuery, nw.PageReadsPerQuery, false)
		}
	}

	// Quality-tier rows (PR10+), matched on (dataset, preset). Like the
	// sweep rows, points only one side measured print without deltas.
	if len(fresh.Tiered) > 0 {
		tierByKey := make(map[string]bench.TieredResult, len(base.Tiered))
		for _, row := range base.Tiered {
			tierByKey[row.Dataset+"/"+row.Preset] = row
		}
		for _, nw := range fresh.Tiered {
			fmt.Printf("\n%s tier %s (alpha=%d gamma=%d", nw.Dataset, nw.Preset, nw.Alpha, nw.Gamma)
			if nw.Target != "" {
				fmt.Printf(", %s", nw.Target)
				if nw.SLOUnmet {
					fmt.Printf(" UNMET")
				}
			}
			fmt.Printf(")\n")
			fmt.Printf("  %-22s %14s %14s %10s\n", "metric", "baseline", "new", "delta")
			old := tierByKey[nw.Dataset+"/"+nw.Preset]
			printDelta("mean_query_us", old.MeanQueryUS, nw.MeanQueryUS, false)
			printDelta("p99_query_us", old.P99QueryUS, nw.P99QueryUS, false)
			printDelta("recall", old.Recall, nw.Recall, true)
		}
	}

	if *gate {
		if len(regressions) > 0 {
			fmt.Printf("\nGATE: %d metric(s) regressed more than %g%%:\n", len(regressions), *threshold)
			for _, r := range regressions {
				fmt.Printf("  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("\nGATE: ok (no gated metric regressed more than %g%%)\n", *threshold)
	}
}

// printDelta renders one metric row; a zero baseline prints "new"
// (metric absent from the older snapshot format) and equal zeros print
// nothing.
func printDelta(name string, ov, nv float64, higherBetter bool) {
	switch {
	case ov == 0 && nv != 0:
		fmt.Printf("  %-22s %14s %14.4g %10s\n", name, "n/a", nv, "new")
		return
	case ov == 0 && nv == 0:
		return
	}
	delta := (nv - ov) / ov * 100
	improved := delta < 0
	if higherBetter {
		improved = delta > 0
	}
	arrow := ""
	if delta != 0 {
		if improved {
			arrow = "better"
		} else {
			arrow = "worse"
		}
	}
	fmt.Printf("  %-22s %14.4g %14.4g %+9.1f%% %s\n", name, ov, nv, delta, arrow)
}
