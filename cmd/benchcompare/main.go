// Command benchcompare diffs two hdbench -snapshot JSON files and
// prints per-dataset deltas for the serving-relevant metrics — the
// report CI attaches next to each fresh snapshot so a perf regression
// (or win) against the committed BENCH_PR*.json baseline is visible
// without downloading artifacts and diffing by hand.
//
// Usage:
//
//	benchcompare BASELINE.json NEW.json
//
// The comparison is report-only: the exit status reflects only whether
// the inputs could be read, never the direction of the deltas.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/hd-index/hdindex/internal/bench"
)

func load(path string) (*bench.Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s bench.Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// metric is one compared field; higherBetter flips the sign annotation,
// not the arithmetic.
type metric struct {
	name         string
	get          func(bench.DatasetResult) float64
	higherBetter bool
}

var metrics = []metric{
	{"build_ms", func(d bench.DatasetResult) float64 { return d.BuildMS }, false},
	{"mean_query_us", func(d bench.DatasetResult) float64 { return d.MeanQueryUS }, false},
	{"batch_qps", func(d bench.DatasetResult) float64 { return d.BatchQPS }, true},
	{"parallel_qps", func(d bench.DatasetResult) float64 { return d.ParallelQPS }, true},
	{"page_reads_per_query", func(d bench.DatasetResult) float64 { return d.PageReadsPerQuery }, false},
	{"hit_ratio", func(d bench.DatasetResult) float64 { return d.HitRatio }, true},
	{"recall", func(d bench.DatasetResult) float64 { return d.Recall }, true},
	{"map", func(d bench.DatasetResult) float64 { return d.MAP }, true},
	{"mean_ratio", func(d bench.DatasetResult) float64 { return d.MeanRatio }, false},
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare BASELINE.json NEW.json")
		os.Exit(2)
	}
	base, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(1)
	}
	fresh, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("baseline: %s (%s)\n", os.Args[1], base.GoVersion)
	fmt.Printf("new:      %s (%s)\n", os.Args[2], fresh.GoVersion)
	// Compare only the workload knobs: ParallelClients is absent from
	// pre-PR3 baselines and doesn't change the sequential numbers.
	bc, fc := base.Config, fresh.Config
	bc.ParallelClients, fc.ParallelClients = 0, 0
	if bc != fc {
		fmt.Printf("note: configs differ (baseline %+v, new %+v) — deltas are indicative only\n",
			base.Config, fresh.Config)
	}

	byName := make(map[string]bench.DatasetResult, len(base.Datasets))
	for _, d := range base.Datasets {
		byName[d.Dataset] = d
	}
	for _, nw := range fresh.Datasets {
		old, ok := byName[nw.Dataset]
		if !ok {
			fmt.Printf("\n%s: not in baseline, skipping\n", nw.Dataset)
			continue
		}
		fmt.Printf("\n%s (n=%d, dim=%d)\n", nw.Dataset, nw.N, nw.Dim)
		fmt.Printf("  %-22s %14s %14s %10s\n", "metric", "baseline", "new", "delta")
		for _, m := range metrics {
			ov, nv := m.get(old), m.get(nw)
			arrow := ""
			switch {
			case ov == 0 && nv != 0:
				fmt.Printf("  %-22s %14s %14.4g %10s\n", m.name, "n/a", nv, "new")
				continue
			case ov == 0 && nv == 0:
				continue
			}
			delta := (nv - ov) / ov * 100
			improved := delta < 0
			if m.higherBetter {
				improved = delta > 0
			}
			if delta != 0 {
				if improved {
					arrow = "better"
				} else {
					arrow = "worse"
				}
			}
			fmt.Printf("  %-22s %14.4g %14.4g %+9.1f%% %s\n", m.name, ov, nv, delta, arrow)
		}
	}
}
