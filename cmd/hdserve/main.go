// Command hdserve serves kNN queries over a built HD-Index via HTTP.
//
// Usage:
//
//	hdserve -index /data/sift.index -addr :8080
//
// Endpoints (JSON bodies; see internal/server):
//
//	POST /search       single kNN query
//	POST /searchbatch  many queries, answered on a bounded worker pool
//	POST /insert       add a vector (§3.6)
//	POST /delete       mark/unmark a vector deleted (§3.6)
//	GET  /stats        index + per-endpoint latency/QPS counters
//	GET  /metrics      Prometheus text exposition (histograms in seconds)
//	GET  /healthz      liveness probe
//
// SIGINT/SIGTERM drain in-flight requests, flush the index, and exit.
//
// Quality tiers: -preset sets the server default quality preset,
// -tiers maps X-Tenant values to tiers (preset + admission shares),
// and -slo "recall>=0.98" -frontier frontier.json runs the auto-tuner,
// which picks the cheapest operating point on the measured
// recall/latency frontier that satisfies the target and keeps
// re-picking as live re-measurement moves the frontier.
//
// With -coordinator, hdserve serves no index of its own: it reads a
// cluster manifest (-cluster-manifest) mapping each shard of a sharded
// build to its ordered replica endpoints (each a stock hdserve holding
// one shard directory), and answers /search and /searchbatch by
// scatter-gathering over them — with retries, failover, hedged
// requests, and active health checking. See internal/cluster.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/cluster"
	"github.com/hd-index/hdindex/internal/server"
	"github.com/hd-index/hdindex/internal/shard"
	"github.com/hd-index/hdindex/internal/slo"
)

func main() {
	var (
		indexDir     = flag.String("index", "", "directory of a built index (required unless -coordinator)")
		addr         = flag.String("addr", ":8080", "listen address")
		parallel     = flag.Bool("parallel", true, "search the index's trees concurrently")
		batchWorkers = flag.Int("batch-workers", 0, "bound on concurrent queries per /searchbatch request (0 = GOMAXPROCS)")
		queryTimeout = flag.Duration("query-timeout", 2*time.Second, "default per-request search deadline (0 = none)")
		maxK         = flag.Int("max-k", 1000, "largest accepted k")
		maxBatch     = flag.Int("max-batch", 4096, "largest accepted /searchbatch size")
		readOnly     = flag.Bool("readonly", false, "reject /insert and /delete")
		noFlush      = flag.Bool("no-flush-on-write", false, "deprecated no-op: inserts are WAL-durable; tune with -wal-sync")
		walSync      = flag.Duration("wal-sync", 0, "WAL fsync cadence: 0 group-commits every write, >0 acks after the page-cache write and fsyncs on this interval")
		memtableMax  = flag.Int("memtable-max", 0, "memtable vectors before a background compaction folds them into the trees (0 = 4096)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "shutdown grace period for in-flight requests")
		slowQueryMs  = flag.Int("slow-query-ms", 0, "log a structured slow-query record with the per-phase breakdown for searches slower than this (0 = off)")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under GET /debug/pprof/")

		maxInflight     = flag.Int("max-inflight", 0, "admitted requests executing at once; excess queue and shed with 503 (0 = unlimited)")
		maxQueue        = flag.Int("max-queue", 0, "admission queue depth before instant shedding (0 = 4x max-inflight)")
		tenantRPS       = flag.Float64("tenant-rps", 0, "per-tenant (X-Tenant header) sustained requests/sec; over-budget tenants get 429 (0 = off)")
		tenantBurst     = flag.Float64("tenant-burst", 0, "per-tenant burst allowance above -tenant-rps (0 = 2x rate)")
		degradePressure = flag.Float64("degrade-pressure", 0, "expected queue wait in seconds beyond which unpinned queries run the cheap cascade (0 = default when admission is on)")

		defaultPreset  = flag.String("preset", "", "server default quality preset for requests naming none: exact, balanced, fast, or auto (default auto)")
		tiersPath      = flag.String("tiers", "", "tenant tier config file mapping X-Tenant values to a preset and admission shares")
		sloTarget      = flag.String("slo", "", `SLO target the auto-tuner holds, e.g. "recall>=0.98" or "p99<=2ms" (requires -frontier)`)
		frontierPath   = flag.String("frontier", "", "recall/latency frontier artifact from hdbench -sweep -sweep-out (required with -slo)")
		retuneInterval = flag.Duration("retune-interval", 0, "how often the tuner re-evaluates its operating point (0 = 30s)")
		remeasureEvery = flag.Duration("remeasure-interval", 0, "how often the tuner replays sampled queries to refresh the frontier (0 = 10m, negative = never)")

		coordinator     = flag.Bool("coordinator", false, "serve as a cluster coordinator over -cluster-manifest instead of a local index")
		clusterManifest = flag.String("cluster-manifest", "", "cluster manifest path (coordinator mode; required with -coordinator)")
		retries         = flag.Int("retries", 0, "coordinator: replica attempts per sub-query (0 = 4)")
		backoffBase     = flag.Duration("backoff", 0, "coordinator: initial retry backoff, doubled per attempt with jitter (0 = 5ms)")
		backoffMax      = flag.Duration("backoff-max", 0, "coordinator: retry backoff ceiling (0 = 250ms)")
		hedgeDelay      = flag.Duration("hedge-delay", 0, "coordinator: fixed hedge trigger; 0 adapts to the windowed p99 of sub-query latency")
		noHedge         = flag.Bool("no-hedge", false, "coordinator: disable hedged requests")
		healthInterval  = flag.Duration("health-interval", 0, "coordinator: replica health-check cadence (0 = 500ms, negative disables)")
	)
	flag.Parse()
	if *coordinator {
		runCoordinator(coordinatorConfig{
			manifestPath:   *clusterManifest,
			addr:           *addr,
			drainTimeout:   *drainTimeout,
			maxK:           *maxK,
			maxBatch:       *maxBatch,
			subQueryTO:     *queryTimeout,
			retries:        *retries,
			backoffBase:    *backoffBase,
			backoffMax:     *backoffMax,
			hedgeDelay:     *hedgeDelay,
			noHedge:        *noHedge,
			healthInterval: *healthInterval,
		})
		return
	}
	for _, f := range []struct {
		set  bool
		name string
	}{
		{*clusterManifest != "", "-cluster-manifest"},
		{*retries != 0, "-retries"},
		{*backoffBase != 0, "-backoff"},
		{*backoffMax != 0, "-backoff-max"},
		{*hedgeDelay != 0, "-hedge-delay"},
		{*noHedge, "-no-hedge"},
		{*healthInterval != 0, "-health-interval"},
	} {
		if f.set {
			log.Fatalf("hdserve: %s only applies with -coordinator", f.name)
		}
	}
	if *indexDir == "" {
		log.Fatal("hdserve: -index is required")
	}

	// Quality-tier and SLO config is validated before touching the
	// index: a typo'd preset or a stale frontier path must fail fast,
	// not after a multi-second open.
	var preset hdindex.Preset
	if *defaultPreset != "" {
		p, err := hdindex.ParsePreset(*defaultPreset)
		if err != nil {
			log.Fatalf("hdserve: -preset: %v", err)
		}
		preset = p
	}
	var tiers *slo.TierConfig
	if *tiersPath != "" {
		t, err := slo.ReadTierConfig(*tiersPath)
		if err != nil {
			log.Fatalf("hdserve: -tiers: %v", err)
		}
		tiers = t
	}
	var target *slo.Target
	var frontier *slo.Frontier
	if *sloTarget != "" {
		if *frontierPath == "" {
			log.Fatal("hdserve: -slo requires -frontier (write one with hdbench -sweep ... -sweep-out)")
		}
		tg, err := slo.ParseTarget(*sloTarget)
		if err != nil {
			log.Fatalf("hdserve: -slo: %v", err)
		}
		target = &tg
		frontier, err = slo.ReadFrontier(*frontierPath)
		if err != nil {
			log.Fatalf("hdserve: -frontier: %v", err)
		}
	} else {
		for _, f := range []struct {
			set  bool
			name string
		}{
			{*frontierPath != "", "-frontier"},
			{*retuneInterval != 0, "-retune-interval"},
			{*remeasureEvery != 0, "-remeasure-interval"},
		} {
			if f.set {
				log.Fatalf("hdserve: %s only applies with -slo", f.name)
			}
		}
	}

	if *noFlush {
		log.Print("hdserve: -no-flush-on-write is deprecated and ignored (inserts are WAL-durable; see -wal-sync)")
	}

	idx, err := hdindex.Open(*indexDir, hdindex.Options{
		Parallel:           *parallel,
		BatchWorkers:       *batchWorkers,
		WALSyncInterval:    *walSync,
		MemtableMaxVectors: *memtableMax,
	})
	if err != nil {
		log.Fatalf("hdserve: open index: %v", err)
	}
	// No defer: every exit path below ends in os.Exit, so the index is
	// closed explicitly after the drain.
	log.Printf("hdserve: opened %s: %d vectors, %d dims, %.1f MB on disk",
		*indexDir, idx.Count(), idx.Dim(), float64(idx.SizeOnDisk())/(1<<20))
	// Replay happens on any open with an uncompacted WAL tail — after a
	// crash, but also after a clean shutdown whose memtable had not hit
	// the compaction threshold yet. Both are normal.
	if ist := idx.IngestStats(); ist.Replayed > 0 {
		log.Printf("hdserve: replayed %d write-ahead-log records into the memtable", ist.Replayed)
	}
	if n := idx.NumShards(); n > 1 {
		for _, sh := range idx.Shards() {
			log.Printf("hdserve: shard %02d/%d: %d vectors, %d deleted", sh.ID, n, sh.Count, sh.Deleted)
		}
	}

	// A shard directory of a sharded build carries an identity stamp;
	// exposing it on /healthz and /stats lets a cluster coordinator
	// verify at startup that this endpoint serves the shard its manifest
	// claims. Absent (standalone index) is fine; unreadable is not.
	identity, err := shard.ReadIdentity(*indexDir)
	if err != nil {
		log.Fatalf("hdserve: read shard identity: %v", err)
	}
	if identity != nil {
		log.Printf("hdserve: serving shard %d of %d (cluster %s)",
			identity.Shard, identity.Shards, identity.ClusterUUID)
	}

	srv := server.New(idx, server.Config{
		QueryTimeout:       *queryTimeout,
		Identity:           identity,
		MaxK:               *maxK,
		MaxBatch:           *maxBatch,
		ReadOnly:           *readOnly,
		SlowQueryThreshold: time.Duration(*slowQueryMs) * time.Millisecond,
		Pprof:              *pprofOn,
		MaxInflight:        *maxInflight,
		MaxQueue:           *maxQueue,
		TenantRPS:          *tenantRPS,
		TenantBurst:        *tenantBurst,
		DegradePressure:    *degradePressure,
		DefaultPreset:      preset,
		Tiers:              tiers,
		SLO:                target,
		Frontier:           frontier,
		RetuneInterval:     *retuneInterval,
		RemeasureInterval:  *remeasureEvery,
	})
	if target != nil {
		log.Printf("hdserve: SLO tuner holding %s over %d frontier points (%s)",
			target, len(frontier.Points), *frontierPath)
	}
	if tiers != nil {
		log.Printf("hdserve: %d tenant tiers over %d mapped tenants (%s)",
			len(tiers.Tiers), len(tiers.Tenants), *tiersPath)
	}
	if *pprofOn {
		log.Print("hdserve: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Reap idle keep-alive connections so a slow-loris fleet cannot
		// pin file descriptors between requests.
		IdleTimeout: 60 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("hdserve: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	exitCode := 0
	select {
	case err := <-errCh:
		// A dead listener still drains, flushes, and closes below —
		// exiting here would lose inserts not yet flushed to disk.
		log.Printf("hdserve: %v", err)
		exitCode = 1
	case s := <-sig:
		log.Printf("hdserve: %v, draining for up to %v", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hdserve: drain: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		log.Printf("hdserve: flush: %v", err)
	}
	if err := idx.Close(); err != nil {
		log.Printf("hdserve: close: %v", err)
	}
	log.Print("hdserve: bye")
	os.Exit(exitCode)
}

type coordinatorConfig struct {
	manifestPath   string
	addr           string
	drainTimeout   time.Duration
	maxK           int
	maxBatch       int
	subQueryTO     time.Duration
	retries        int
	backoffBase    time.Duration
	backoffMax     time.Duration
	hedgeDelay     time.Duration
	noHedge        bool
	healthInterval time.Duration
}

// runCoordinator is main for -coordinator mode: no local index, just
// the scatter-gather layer over the manifest's shard servers.
func runCoordinator(cfg coordinatorConfig) {
	if cfg.manifestPath == "" {
		log.Fatal("hdserve: -coordinator requires -cluster-manifest")
	}
	man, err := cluster.ReadManifest(cfg.manifestPath)
	if err != nil {
		log.Fatalf("hdserve: %v", err)
	}
	coord, err := cluster.New(man, cluster.Options{
		MaxAttempts:     cfg.retries,
		BackoffBase:     cfg.backoffBase,
		BackoffMax:      cfg.backoffMax,
		SubQueryTimeout: cfg.subQueryTO,
		HedgeDelay:      cfg.hedgeDelay,
		DisableHedging:  cfg.noHedge,
		HealthInterval:  cfg.healthInterval,
		MaxK:            cfg.maxK,
		MaxBatch:        cfg.maxBatch,
	})
	if err != nil {
		log.Fatalf("hdserve: %v", err)
	}
	// The startup identity sweep: a miswired endpoint (wrong shard,
	// wrong build, wrong dimensionality) is a configuration error and
	// refuses to start; an unreachable one is a runtime condition and
	// is left to the health checker.
	vctx, vcancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = coord.Verify(vctx)
	vcancel()
	if err != nil {
		log.Fatalf("hdserve: %v", err)
	}
	log.Printf("hdserve: coordinating %d shards (dim %d) from %s",
		coord.NumShards(), coord.Dim(), cfg.manifestPath)

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("hdserve: coordinator listening on %s", cfg.addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	exitCode := 0
	select {
	case err := <-errCh:
		log.Printf("hdserve: %v", err)
		exitCode = 1
	case s := <-sig:
		log.Printf("hdserve: %v, draining for up to %v", s, cfg.drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hdserve: drain: %v", err)
	}
	coord.Close()
	log.Print("hdserve: bye")
	os.Exit(exitCode)
}
