// Command hdserve serves kNN queries over a built HD-Index via HTTP.
//
// Usage:
//
//	hdserve -index /data/sift.index -addr :8080
//
// Endpoints (JSON bodies; see internal/server):
//
//	POST /search       single kNN query
//	POST /searchbatch  many queries, answered on a bounded worker pool
//	POST /insert       add a vector (§3.6)
//	POST /delete       mark/unmark a vector deleted (§3.6)
//	GET  /stats        index + per-endpoint latency/QPS counters
//	GET  /metrics      Prometheus text exposition (histograms in seconds)
//	GET  /healthz      liveness probe
//
// SIGINT/SIGTERM drain in-flight requests, flush the index, and exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/server"
)

func main() {
	var (
		indexDir     = flag.String("index", "", "directory of a built index (required)")
		addr         = flag.String("addr", ":8080", "listen address")
		parallel     = flag.Bool("parallel", true, "search the index's trees concurrently")
		batchWorkers = flag.Int("batch-workers", 0, "bound on concurrent queries per /searchbatch request (0 = GOMAXPROCS)")
		queryTimeout = flag.Duration("query-timeout", 2*time.Second, "default per-request search deadline (0 = none)")
		maxK         = flag.Int("max-k", 1000, "largest accepted k")
		maxBatch     = flag.Int("max-batch", 4096, "largest accepted /searchbatch size")
		readOnly     = flag.Bool("readonly", false, "reject /insert and /delete")
		noFlush      = flag.Bool("no-flush-on-write", false, "deprecated no-op: inserts are WAL-durable; tune with -wal-sync")
		walSync      = flag.Duration("wal-sync", 0, "WAL fsync cadence: 0 group-commits every write, >0 acks after the page-cache write and fsyncs on this interval")
		memtableMax  = flag.Int("memtable-max", 0, "memtable vectors before a background compaction folds them into the trees (0 = 4096)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "shutdown grace period for in-flight requests")
		slowQueryMs  = flag.Int("slow-query-ms", 0, "log a structured slow-query record with the per-phase breakdown for searches slower than this (0 = off)")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under GET /debug/pprof/")

		maxInflight     = flag.Int("max-inflight", 0, "admitted requests executing at once; excess queue and shed with 503 (0 = unlimited)")
		maxQueue        = flag.Int("max-queue", 0, "admission queue depth before instant shedding (0 = 4x max-inflight)")
		tenantRPS       = flag.Float64("tenant-rps", 0, "per-tenant (X-Tenant header) sustained requests/sec; over-budget tenants get 429 (0 = off)")
		tenantBurst     = flag.Float64("tenant-burst", 0, "per-tenant burst allowance above -tenant-rps (0 = 2x rate)")
		degradePressure = flag.Float64("degrade-pressure", 0, "expected queue wait in seconds beyond which unpinned queries run the cheap cascade (0 = default when admission is on)")
	)
	flag.Parse()
	if *indexDir == "" {
		log.Fatal("hdserve: -index is required")
	}

	if *noFlush {
		log.Print("hdserve: -no-flush-on-write is deprecated and ignored (inserts are WAL-durable; see -wal-sync)")
	}

	idx, err := hdindex.Open(*indexDir, hdindex.Options{
		Parallel:           *parallel,
		BatchWorkers:       *batchWorkers,
		WALSyncInterval:    *walSync,
		MemtableMaxVectors: *memtableMax,
	})
	if err != nil {
		log.Fatalf("hdserve: open index: %v", err)
	}
	// No defer: every exit path below ends in os.Exit, so the index is
	// closed explicitly after the drain.
	log.Printf("hdserve: opened %s: %d vectors, %d dims, %.1f MB on disk",
		*indexDir, idx.Count(), idx.Dim(), float64(idx.SizeOnDisk())/(1<<20))
	// Replay happens on any open with an uncompacted WAL tail — after a
	// crash, but also after a clean shutdown whose memtable had not hit
	// the compaction threshold yet. Both are normal.
	if ist := idx.IngestStats(); ist.Replayed > 0 {
		log.Printf("hdserve: replayed %d write-ahead-log records into the memtable", ist.Replayed)
	}
	if n := idx.NumShards(); n > 1 {
		for _, sh := range idx.Shards() {
			log.Printf("hdserve: shard %02d/%d: %d vectors, %d deleted", sh.ID, n, sh.Count, sh.Deleted)
		}
	}

	srv := server.New(idx, server.Config{
		QueryTimeout:       *queryTimeout,
		MaxK:               *maxK,
		MaxBatch:           *maxBatch,
		ReadOnly:           *readOnly,
		SlowQueryThreshold: time.Duration(*slowQueryMs) * time.Millisecond,
		Pprof:              *pprofOn,
		MaxInflight:        *maxInflight,
		MaxQueue:           *maxQueue,
		TenantRPS:          *tenantRPS,
		TenantBurst:        *tenantBurst,
		DegradePressure:    *degradePressure,
	})
	if *pprofOn {
		log.Print("hdserve: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Reap idle keep-alive connections so a slow-loris fleet cannot
		// pin file descriptors between requests.
		IdleTimeout: 60 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("hdserve: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	exitCode := 0
	select {
	case err := <-errCh:
		// A dead listener still drains, flushes, and closes below —
		// exiting here would lose inserts not yet flushed to disk.
		log.Printf("hdserve: %v", err)
		exitCode = 1
	case s := <-sig:
		log.Printf("hdserve: %v, draining for up to %v", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hdserve: drain: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		log.Printf("hdserve: flush: %v", err)
	}
	if err := idx.Close(); err != nil {
		log.Printf("hdserve: close: %v", err)
	}
	log.Print("hdserve: bye")
	os.Exit(exitCode)
}
