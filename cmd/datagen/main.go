// Command datagen emits the synthetic datasets of the reproduction in
// fvecs format, so hdtool and external tools can consume them.
//
// Usage:
//
//	datagen -dataset sift -n 100000 -out sift.fvecs -queries 100 -qout sift_q.fvecs
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hd-index/hdindex/internal/data"
)

var generators = map[string]func(n int, seed int64) *data.Dataset{
	"sift":  data.SIFTLike,
	"audio": data.AudioLike,
	"sun":   data.SUNLike,
	"yorck": data.YorckLike,
	"enron": data.EnronLike,
	"glove": data.GloveLike,
}

func main() {
	var (
		dataset = flag.String("dataset", "", "dataset family: sift|audio|sun|yorck|enron|glove")
		n       = flag.Int("n", 10000, "number of vectors")
		out     = flag.String("out", "", "fvecs output path")
		queries = flag.Int("queries", 0, "also emit this many perturbed queries")
		qout    = flag.String("qout", "", "fvecs output path for queries")
		gtout   = flag.String("gtout", "", "optional ivecs ground-truth output (k=100)")
		seed    = flag.Int64("seed", 42, "random seed")
		list    = flag.Bool("list", false, "list dataset families")
	)
	flag.Parse()

	if *list {
		fmt.Println("dataset families (Table 4 stand-ins):")
		fmt.Println("  sift   128-d integer features in [0,255]")
		fmt.Println("  audio  192-d floats in [-1,1]")
		fmt.Println("  sun    512-d floats in [0,1]")
		fmt.Println("  yorck  128-d floats in [-1,1]")
		fmt.Println("  enron  1369-d integer counts")
		fmt.Println("  glove  100-d floats in [-10,10]")
		return
	}
	gen, ok := generators[*dataset]
	if !ok {
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q (use -list)\n", *dataset)
		os.Exit(2)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out required")
		os.Exit(2)
	}
	ds := gen(*n, *seed)
	if err := data.WriteFvecs(*out, ds.Vectors); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d x %d vectors to %s\n", len(ds.Vectors), ds.Dim, *out)

	if *queries > 0 {
		if *qout == "" {
			fmt.Fprintln(os.Stderr, "datagen: -qout required with -queries")
			os.Exit(2)
		}
		qs := ds.PerturbedQueries(*queries, 0.01, *seed+1)
		if err := data.WriteFvecs(*qout, qs); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d queries to %s\n", len(qs), *qout)
		if *gtout != "" {
			ids, _ := data.GroundTruth(ds.Vectors, qs, 100)
			if err := data.WriteIvecs(*gtout, ids); err != nil {
				fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote ground truth to %s\n", *gtout)
		}
	}
}
