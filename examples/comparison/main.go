// Comparison: HD-Index against every baseline of the paper's §5 on one
// clustered dataset — a miniature of Figure 8 runnable in seconds.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/bench"
	"github.com/hd-index/hdindex/internal/metrics"
)

func main() {
	spec, ok := bench.SpecByName("SIFT10K")
	if !ok {
		log.Fatal("spec missing")
	}
	cfg := bench.Config{Scale: 0.5, Queries: 20, K: 10, Seed: 21,
		WorkDir: filepath.Join(os.TempDir(), "hdindex-comparison")}
	defer os.RemoveAll(cfg.WorkDir)

	w := bench.MakeWorkload(spec, cfg)
	fmt.Printf("dataset: %d x %d (SIFT-like), %d queries, k=10\n\n",
		len(w.Data.Vectors), w.Data.Dim, len(w.Queries))
	fmt.Printf("%-12s %8s %10s %10s %9s\n", "method", "MAP@10", "ratio", "ms/query", "index MB")

	run := func(name string, ix baselines.Index) {
		defer ix.Close()
		got := make([][]uint64, len(w.Queries))
		gotD := make([][]float64, len(w.Queries))
		t0 := time.Now()
		for qi, q := range w.Queries {
			res, err := ix.Search(q, 10)
			if err != nil {
				log.Fatal(err)
			}
			ids := make([]uint64, len(res))
			ds := make([]float64, len(res))
			for i, r := range res {
				ids[i], ds[i] = r.ID, r.Dist
			}
			got[qi], gotD[qi] = ids, ds
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000 / float64(len(w.Queries))
		var rsum float64
		for qi := range got {
			tk := w.TruthDs[qi]
			if len(tk) > 10 {
				tk = tk[:10]
			}
			rsum += metrics.Ratio(gotD[qi], tk)
		}
		fmt.Printf("%-12s %8.3f %10.3f %10.3f %9.1f\n",
			name, metrics.MAP(got, w.TruthIDs, 10), rsum/float64(len(got)),
			ms, float64(ix.SizeBytes())/(1<<20))
	}

	for _, b := range bench.Methods(cfg.Seed) {
		ix, err := b.Build(filepath.Join(cfg.WorkDir, b.Name), w)
		if err != nil {
			fmt.Printf("%-12s %8s\n", b.Name, "NP")
			continue
		}
		run(b.Name, ix)
	}
	lin := bench.LinearBuilder()
	ix, err := lin.Build("", w)
	if err != nil {
		log.Fatal(err)
	}
	run("Linear", ix)
}
