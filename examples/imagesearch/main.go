// Image search (§5.5 of the paper): multi-descriptor image retrieval
// with Borda-count aggregation.
//
// Each "image" is a bag of SURF-like local descriptors. To find images
// similar to a query image, every query descriptor runs a kANN search
// against the database of all descriptors; each database image earns a
// Borda count from the positions at which its descriptors appear
// (Eq. 7); the images with the highest counts win. Per-descriptor
// accuracy can be imperfect — the aggregation absorbs small errors,
// which is the paper's §1 argument for approximate search.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/borda"
)

const (
	numImages     = 120
	descPerImage  = 40
	descriptorDim = 64
	kPerDesc      = 20
	topImages     = 3
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Build the corpus: image i draws descriptors around 3 "themes".
	var descriptors [][]float32
	var descImage []uint64
	for img := 0; img < numImages; img++ {
		themes := make([][]float64, 3)
		for t := range themes {
			th := make([]float64, descriptorDim)
			for d := range th {
				th[d] = rng.Float64()*2 - 1
			}
			themes[t] = th
		}
		for j := 0; j < descPerImage; j++ {
			th := themes[rng.Intn(3)]
			v := make([]float32, descriptorDim)
			for d := range v {
				v[d] = float32(th[d] + rng.NormFloat64()*0.08)
			}
			descriptors = append(descriptors, v)
			descImage = append(descImage, uint64(img))
		}
	}

	dir := filepath.Join(os.TempDir(), "hdindex-imagesearch")
	defer os.RemoveAll(dir)
	idx, err := hdindex.Build(dir, descriptors, hdindex.Options{
		Tau: 8, Omega: 16, Alpha: 1024, Gamma: 256, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("indexed %d descriptors from %d images\n", len(descriptors), numImages)

	// Query: a noisy re-render of image 42.
	const target = 42
	var own [][]float32
	for i, v := range descriptors {
		if descImage[i] == target {
			own = append(own, v)
		}
	}
	queryDescs := make([][]float32, 15)
	for j := range queryDescs {
		src := own[rng.Intn(len(own))]
		v := make([]float32, descriptorDim)
		for d := range v {
			v[d] = src[d] + float32(rng.NormFloat64())*0.02
		}
		queryDescs[j] = v
	}

	// kANN per descriptor, then Borda aggregation.
	lists := make([][]uint64, len(queryDescs))
	for i, qd := range queryDescs {
		res, err := idx.Search(qd, kPerDesc)
		if err != nil {
			log.Fatal(err)
		}
		ids := make([]uint64, len(res))
		for j, r := range res {
			ids[j] = r.ID
		}
		lists[i] = ids
	}
	scores, err := borda.Aggregate(lists, func(d uint64) uint64 { return descImage[d] }, topImages)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntop-%d images for a query derived from image %d:\n", topImages, target)
	for rank, s := range scores {
		marker := ""
		if s.ImageID == target {
			marker = "  <-- correct"
		}
		fmt.Printf("  #%d image %-4d borda=%.0f%s\n", rank+1, s.ImageID, s.Score, marker)
	}
	if scores[0].ImageID == target {
		fmt.Println("\nretrieval succeeded: aggregation over descriptors tolerates per-query approximation")
	}
}
