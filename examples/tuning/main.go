// Tuning: walk the paper's §5.2 parameter studies on a small dataset —
// the m, τ, α and γ knobs and the filter choice — and print how MAP and
// query time respond, mirroring Figures 4-6.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

func main() {
	ds := data.SIFTLike(8000, 3)
	queries := ds.PerturbedQueries(15, 0.01, 4)
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)

	evalIndex := func(o hdindex.Options) (float64, float64) {
		dir := filepath.Join(os.TempDir(), fmt.Sprintf("hdindex-tuning-%d", time.Now().UnixNano()))
		defer os.RemoveAll(dir)
		idx, err := hdindex.Build(dir, ds.Vectors, o)
		if err != nil {
			log.Fatal(err)
		}
		defer idx.Close()
		got := make([][]uint64, len(queries))
		t0 := time.Now()
		for qi, q := range queries {
			res, err := idx.Search(q, 10)
			if err != nil {
				log.Fatal(err)
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			got[qi] = ids
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000 / float64(len(queries))
		return metrics.MAP(got, truthIDs, 10), ms
	}

	base := hdindex.Options{Omega: 8, Alpha: 1024, Gamma: 256, Seed: 9}

	fmt.Println("— reference objects m (paper: saturates at 10, Fig. 4a-d) —")
	for _, m := range []int{2, 5, 10, 15} {
		o := base
		o.M = m
		mapv, ms := evalIndex(o)
		fmt.Printf("  m=%-3d MAP@10=%.3f  %.2f ms/query\n", m, mapv, ms)
	}

	fmt.Println("— trees tau (paper: saturates at 8, Fig. 4e-h) —")
	for _, tau := range []int{2, 4, 8, 16} {
		o := base
		o.Tau = tau
		mapv, ms := evalIndex(o)
		fmt.Printf("  tau=%-3d MAP@10=%.3f  %.2f ms/query\n", tau, mapv, ms)
	}

	fmt.Println("— candidates alpha at alpha/gamma=4 (paper: saturates at 4096, Fig. 6) —")
	for _, alpha := range []int{256, 1024, 4096} {
		o := base
		o.Alpha, o.Gamma = alpha, alpha/4
		mapv, ms := evalIndex(o)
		fmt.Printf("  alpha=%-5d MAP@10=%.3f  %.2f ms/query\n", alpha, mapv, ms)
	}

	fmt.Println("— filters (paper §5.2.5: Ptolemaic buys MAP, costs CPU) —")
	for _, pto := range []bool{false, true} {
		o := base
		o.UsePtolemaic = pto
		if pto {
			o.Beta = o.Alpha
		}
		mapv, ms := evalIndex(o)
		name := "triangular     "
		if pto {
			name = "tri + ptolemaic"
		}
		fmt.Printf("  %s MAP@10=%.3f  %.2f ms/query\n", name, mapv, ms)
	}
}
