// Tuning: walk the paper's §5.2 parameter studies on a small dataset —
// the m, τ, α and γ knobs and the filter choice — and print how MAP and
// query time respond, mirroring Figures 4-6.
//
// m and τ shape the index itself, so each point rebuilds. α, γ and the
// Ptolemaic filter govern only the query cascade: those studies run as
// per-query overrides on ONE built index (hdindex.WithAlpha & co),
// which is exactly how the recall/latency frontier is meant to be
// explored in production.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

func main() {
	ds := data.SIFTLike(8000, 3)
	queries := ds.PerturbedQueries(15, 0.01, 4)
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	ctx := context.Background()

	evalQueries := func(idx *hdindex.Index, opts ...hdindex.QueryOption) (float64, float64) {
		got := make([][]uint64, len(queries))
		t0 := time.Now()
		for qi, q := range queries {
			resp, err := idx.Query(ctx, q, 10, opts...)
			if err != nil {
				log.Fatal(err)
			}
			ids := make([]uint64, len(resp.Results))
			for i, r := range resp.Results {
				ids[i] = r.ID
			}
			got[qi] = ids
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000 / float64(len(queries))
		return metrics.MAP(got, truthIDs, 10), ms
	}

	evalIndex := func(o hdindex.Options) (float64, float64) {
		dir := filepath.Join(os.TempDir(), fmt.Sprintf("hdindex-tuning-%d", time.Now().UnixNano()))
		defer os.RemoveAll(dir)
		idx, err := hdindex.Build(dir, ds.Vectors, o)
		if err != nil {
			log.Fatal(err)
		}
		defer idx.Close()
		return evalQueries(idx)
	}

	base := hdindex.Options{Omega: 8, Alpha: 1024, Gamma: 256, Seed: 9}

	fmt.Println("— reference objects m (paper: saturates at 10, Fig. 4a-d; rebuild per point) —")
	for _, m := range []int{2, 5, 10, 15} {
		o := base
		o.M = m
		mapv, ms := evalIndex(o)
		fmt.Printf("  m=%-3d MAP@10=%.3f  %.2f ms/query\n", m, mapv, ms)
	}

	fmt.Println("— trees tau (paper: saturates at 8, Fig. 4e-h; rebuild per point) —")
	for _, tau := range []int{2, 4, 8, 16} {
		o := base
		o.Tau = tau
		mapv, ms := evalIndex(o)
		fmt.Printf("  tau=%-3d MAP@10=%.3f  %.2f ms/query\n", tau, mapv, ms)
	}

	// One index serves every remaining study: the cascade knobs are
	// per-query options, so there is nothing left to rebuild.
	dir := filepath.Join(os.TempDir(), fmt.Sprintf("hdindex-tuning-base-%d", time.Now().UnixNano()))
	defer os.RemoveAll(dir)
	o := base
	o.Alpha, o.Beta, o.Gamma = 4096, 4096, 1024 // widest cascade the sweep touches
	idx, err := hdindex.Build(dir, ds.Vectors, o)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	fmt.Println("— candidates alpha at alpha/gamma=4 (paper: saturates at 4096, Fig. 6; one index, per-query) —")
	for _, alpha := range []int{256, 1024, 4096} {
		mapv, ms := evalQueries(idx, hdindex.WithAlpha(alpha), hdindex.WithGamma(alpha/4))
		fmt.Printf("  alpha=%-5d MAP@10=%.3f  %.2f ms/query\n", alpha, mapv, ms)
	}

	fmt.Println("— filters (paper §5.2.5: Ptolemaic buys MAP, costs CPU; one index, per-query) —")
	for _, pto := range []bool{false, true} {
		mapv, ms := evalQueries(idx,
			hdindex.WithAlpha(1024), hdindex.WithGamma(256), hdindex.WithPtolemaic(pto))
		name := "triangular     "
		if pto {
			name = "tri + ptolemaic"
		}
		fmt.Printf("  %s MAP@10=%.3f  %.2f ms/query\n", name, mapv, ms)
	}
}
