// Quickstart: build an HD-Index over a synthetic SIFT-like dataset and
// answer a few kANN queries with the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/data"
)

func main() {
	// 10,000 SIFT-like 128-d vectors (integer values in [0,255]).
	ds := data.SIFTLike(10000, 1)
	queries := ds.PerturbedQueries(3, 0.01, 2)

	dir := filepath.Join(os.TempDir(), "hdindex-quickstart")
	defer os.RemoveAll(dir)

	// Zero options = the paper's recommended parameters (m=10 references
	// chosen by SSS, tau=8 trees, alpha=4096, triangular filter).
	idx, err := hdindex.Build(dir, ds.Vectors, hdindex.Options{Omega: 8, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("built HD-Index over %d vectors (%d dims), %.1f MB on disk\n",
		idx.Count(), idx.Dim(), float64(idx.SizeOnDisk())/(1<<20))

	for qi, q := range queries {
		res, stats, err := idx.SearchWithStats(q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %d: 5 nearest neighbours (refined %d candidates, %d page reads)\n",
			qi, stats.Candidates, stats.PageReads)
		for rank, r := range res {
			fmt.Printf("  #%d id=%-6d dist=%.2f\n", rank+1, r.ID, r.Dist)
		}
	}

	// Indexes are persistent: reopen and query again.
	if err := idx.Close(); err != nil {
		log.Fatal(err)
	}
	reopened, err := hdindex.Open(dir, hdindex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	res, err := reopened.Search(queries[0], 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreopened index answers the same query: nearest id=%d dist=%.2f\n",
		res[0].ID, res[0].Dist)
}
