# Targets mirror .github/workflows/ci.yml so "make check" locally means
# CI will agree.

GO ?= go

.PHONY: build test race crash chaos cluster-chaos staticcheck bench bench-smoke bench-compare metrics-smoke snapshot snapshot-sharded sweep tune-smoke fmt fmt-check vet check serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/wal/... ./internal/core/... ./internal/server/... ./internal/shard/... ./internal/fanout/... ./internal/pager/... ./internal/vecstore/... ./internal/telemetry/... ./internal/admission/... ./internal/iofault/... ./internal/slo/...

# SIGKILL a live hdserve mid-insert-storm and prove recovery loses no
# acknowledged write (the crash-recovery CI job). Rounds default to 3;
# raise with HD_CRASH_ROUNDS=8.
crash:
	$(GO) test -v -timeout 15m ./internal/crash/

# Fault-injection + overload chaos suite under the race detector: WAL
# ENOSPC/fsync poison, compaction EIO + circuit breaker, pager read
# EIO, goroutine-leak checks, the 4× overload storm, and tenant
# throttling (the chaos CI job).
chaos:
	$(GO) test -race -count=1 ./internal/iofault/ ./internal/admission/
	$(GO) test -race -count=1 -run '^Test(Fault|Chaos|Overload)' ./internal/core/ ./internal/server/

# Cluster robustness suite under the race detector: the coordinator's
# equivalence/failover/hedging tests, the netfault flaky-TCP proxy
# tests, and the replica SIGKILL storm against real hdserve processes
# (the cluster CI job).
cluster-chaos:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/netfault/
	$(GO) test -race -count=1 -run '^TestClusterReplicaKillStorm$$' -v ./internal/crash/

# Requires staticcheck on PATH (CI installs it; there is no vendored
# copy). Configured by staticcheck.conf.
staticcheck:
	staticcheck ./...

# Full benchmark suite (the paper's tables/figures at reduced scale).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# What CI runs: one iteration per experiment plus core micro-benchmarks.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
	$(GO) test -bench=. -benchtime=50x -run='^$$' ./internal/core/

# The observability smoke: the /metrics exposition tests (promlint-style
# parser over a live scrape) plus the load test's mid-storm scraper.
metrics-smoke:
	$(GO) test -race -run 'TestMetricsExposition|TestLoad64Clients' -count=1 ./internal/server/

# Write a perf snapshot to SNAPSHOT_OUT. To refresh the committed
# baseline, point it at the BENCH_PR<n>.json for the current PR:
#   make snapshot SNAPSHOT_OUT=BENCH_PR1.json
# -buildscale 1 adds the build-only rows (build_ms, build_allocs,
# build_phase_ms at 10× the query-phase scale).
SNAPSHOT_OUT ?= bench-snapshot.json
snapshot:
	$(GO) run ./cmd/hdbench -snapshot $(SNAPSHOT_OUT) -scale 0.1 -queries 20 -k 20 -buildscale 1

# Sharded counterpart (the committed baseline is BENCH_PR6.json):
#   make snapshot-sharded SNAPSHOT_SHARDED_OUT=BENCH_PR6.json
# -sweep adds the recall/latency frontier rows: the same built index
# queried at several per-query alpha operating points. -ingest adds the
# mixed insert/search rows (WAL write throughput vs flush-per-insert,
# read latency under writes). -overload adds the admission-control
# storm rows (shed rate, accepted-tail latency, degraded fraction at
# ~4× the sustainable rate). -cluster adds the cluster-serving rows
# (coordinator scatter-gather vs in-process qps/p99, hedged fraction,
# failover behaviour with a dead replica). -tiered adds the
# quality-tier rows (named presets plus the SLO tuner's auto pick).
SNAPSHOT_SHARDED_OUT ?= bench-snapshot-sharded.json
SWEEP ?= alpha=128,512,2048
INGEST ?= 2000
snapshot-sharded:
	$(GO) run ./cmd/hdbench -shards 4 -snapshot $(SNAPSHOT_SHARDED_OUT) -scale 0.1 -queries 20 -k 20 -buildscale 1 -sweep $(SWEEP) -ingest $(INGEST) -overload -cluster -tiered

# Walk the recall/latency frontier on one built index (per-query alpha
# overrides; no rebuild between points) and print the rows. Override
# the spec with SWEEP=alpha=... or SWEEP=gamma=...
sweep:
	$(GO) run ./cmd/hdbench -snapshot sweep-snapshot.json -scale 0.1 -queries 20 -k 20 -sweep $(SWEEP)

# The SLO-tuning smoke: sweep a small frontier to an artifact, then
# resolve a recall target against it offline with `hdtool tune` — the
# same artifact and decision rules `hdserve -slo -frontier` serves by.
tune-smoke:
	$(GO) run ./cmd/hdbench -snapshot tune-snapshot.json -scale 0.05 -queries 20 -k 10 -sweep alpha=64,256,1024 -sweep-out tune-frontier.json
	$(GO) run ./cmd/hdtool tune -frontier tune-frontier.json -slo "recall>=0.9"

# Report-only perf diff: regenerate a sharded snapshot with the
# baseline's config and print per-dataset deltas (build_ms,
# build_allocs, mean_query_us, batch_qps, parallel_qps,
# page_reads_per_query, hit_ratio, quality — plus the build-only rows)
# against the newest committed BENCH_PR*.json (override with
# BASELINE=...). -gate makes the exit status reflect >15% regressions
# in mean_query_us/batch_qps; CI runs it under continue-on-error so the
# gate stays report-only there.
BASELINE ?= $(shell ls BENCH_PR*.json 2>/dev/null | sort -V | tail -1)
bench-compare: snapshot-sharded
	$(GO) run ./cmd/benchcompare -gate $(BASELINE) $(SNAPSHOT_SHARDED_OUT)

fmt:
	gofmt -l -w .

# Fails (like CI) when any file needs formatting; does not rewrite.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: build vet fmt-check test race

# Build a demo index over synthetic SIFT-like data and serve it
# (ctrl-c to drain and exit).
serve:
	$(GO) run ./cmd/datagen -dataset sift -n 10000 -out /tmp/hdserve-demo.fvecs
	$(GO) run ./cmd/hdtool build -data /tmp/hdserve-demo.fvecs -index /tmp/hdserve-demo.index -omega 8
	$(GO) run ./cmd/hdserve -index /tmp/hdserve-demo.index

clean:
	rm -f bench-smoke.txt bench-core.txt bench-snapshot.json sweep-snapshot.json tune-snapshot.json tune-frontier.json
