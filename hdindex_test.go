package hdindex

import (
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

// The facade must behave identically to the core: build, search, insert,
// persist, reopen.
func TestFacadeEndToEnd(t *testing.T) {
	ds := data.Generate(data.Config{N: 2000, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 1})
	queries := ds.PerturbedQueries(10, 0.01, 2)
	dir := filepath.Join(t.TempDir(), "ix")

	idx, err := Build(dir, ds.Vectors, Options{Tau: 4, Omega: 8, Alpha: 512, Gamma: 128, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Count() != 2000 || idx.Dim() != 32 {
		t.Fatalf("count=%d dim=%d", idx.Count(), idx.Dim())
	}
	if idx.SizeOnDisk() <= 0 {
		t.Fatal("SizeOnDisk must be positive")
	}

	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	var got [][]uint64
	for _, q := range queries {
		res, stats, err := idx.SearchWithStats(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Candidates < 1 {
			t.Fatal("stats not populated")
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		got = append(got, ids)
	}
	if m := metrics.MAP(got, truthIDs, 10); m < 0.6 {
		t.Errorf("facade MAP@10 = %v", m)
	}

	// Insert + immediate retrieval.
	novel := make([]float32, 32)
	for d := range novel {
		novel[d] = 0.99
	}
	id, err := idx.Insert(novel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.Search(novel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != id {
		t.Fatalf("inserted vector not found: %+v", res[0])
	}
	if err := idx.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen.
	re, err := Open(dir, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 2001 {
		t.Fatalf("reopened count = %d, want 2001", re.Count())
	}
	res, err = re.Search(novel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != id {
		t.Fatal("reopened index lost the inserted vector")
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := Build(filepath.Join(t.TempDir(), "x"), nil, Options{}); err == nil {
		t.Error("empty dataset must fail")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), Options{}); err == nil {
		t.Error("opening a missing index must fail")
	}
}
