package hdindex

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

// The facade must behave identically to the core: build, search, insert,
// persist, reopen.
func TestFacadeEndToEnd(t *testing.T) {
	ds := data.Generate(data.Config{N: 2000, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 1})
	queries := ds.PerturbedQueries(10, 0.01, 2)
	dir := filepath.Join(t.TempDir(), "ix")

	idx, err := Build(dir, ds.Vectors, Options{Tau: 4, Omega: 8, Alpha: 512, Gamma: 128, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Count() != 2000 || idx.Dim() != 32 {
		t.Fatalf("count=%d dim=%d", idx.Count(), idx.Dim())
	}
	if idx.SizeOnDisk() <= 0 {
		t.Fatal("SizeOnDisk must be positive")
	}

	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	var got [][]uint64
	for _, q := range queries {
		res, stats, err := idx.SearchWithStats(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Candidates < 1 {
			t.Fatal("stats not populated")
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		got = append(got, ids)
	}
	if m := metrics.MAP(got, truthIDs, 10); m < 0.6 {
		t.Errorf("facade MAP@10 = %v", m)
	}

	// Insert + immediate retrieval.
	novel := make([]float32, 32)
	for d := range novel {
		novel[d] = 0.99
	}
	id, err := idx.Insert(novel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.Search(novel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != id {
		t.Fatalf("inserted vector not found: %+v", res[0])
	}
	if err := idx.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen.
	re, err := Open(dir, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 2001 {
		t.Fatalf("reopened count = %d, want 2001", re.Count())
	}
	res, err = re.Search(novel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != id {
		t.Fatal("reopened index lost the inserted vector")
	}
}

// Options.Shards must produce a manifest layout that Open auto-detects,
// with the whole facade surface working identically over it.
func TestFacadeShardedLayout(t *testing.T) {
	ds := data.Generate(data.Config{N: 1601, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 4})
	queries := ds.PerturbedQueries(8, 0.01, 5)
	dir := filepath.Join(t.TempDir(), "ix")

	idx, err := Build(dir, ds.Vectors, Options{Tau: 4, Omega: 8, Alpha: 512, Gamma: 128, Seed: 3, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumShards() != 4 {
		t.Fatalf("NumShards = %d", idx.NumShards())
	}
	shards := idx.Shards()
	if len(shards) != 4 {
		t.Fatalf("%d shard infos", len(shards))
	}
	var sum uint64
	for _, sh := range shards {
		sum += sh.Count
	}
	if sum != 1601 {
		t.Fatalf("shard counts sum to %d", sum)
	}

	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	var got [][]uint64
	for _, q := range queries {
		res, stats, err := idx.SearchWithStats(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Candidates < 1 {
			t.Fatal("aggregated stats not populated")
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		got = append(got, ids)
	}
	if m := metrics.MAP(got, truthIDs, 10); m < 0.5 {
		t.Errorf("sharded facade MAP@10 = %v", m)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	// Open auto-detects the manifest; Options.Shards is irrelevant here.
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumShards() != 4 || re.Count() != 1601 {
		t.Fatalf("reopened: shards=%d count=%d", re.NumShards(), re.Count())
	}
}

// The mutation lifecycle must survive close/reopen with identical
// results on both layouts the facade can write (Options.Shards 0, 1,
// and 4 — legacy, 1-shard manifest, multi-shard manifest).
func TestFacadeDurabilityAcrossLayouts(t *testing.T) {
	for _, shards := range []int{0, 1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ds := data.Generate(data.Config{N: 1000, Dim: 32, Clusters: 5, Lo: 0, Hi: 1, Seed: 8})
			queries := ds.PerturbedQueries(6, 0.02, 9)
			dir := filepath.Join(t.TempDir(), "ix")

			idx, err := Build(dir, ds.Vectors, Options{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 2, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			novel := make([]float32, 32)
			for d := range novel {
				novel[d] = 0.95
			}
			id, err := idx.Insert(novel)
			if err != nil {
				t.Fatal(err)
			}
			if id != 1000 {
				t.Fatalf("insert assigned id %d", id)
			}
			if err := idx.Delete(55); err != nil {
				t.Fatal(err)
			}
			want := make([][]Result, len(queries))
			for qi, q := range queries {
				if want[qi], err = idx.Search(q, 10); err != nil {
					t.Fatal(err)
				}
			}
			if err := idx.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if re.Count() != 1001 || re.DeletedCount() != 1 {
				t.Fatalf("reopened count=%d deleted=%d", re.Count(), re.DeletedCount())
			}
			for qi, q := range queries {
				got, err := re.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want[qi]) {
					t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want[qi]))
				}
				for i := range got {
					if got[i].ID != want[qi][i].ID || got[i].Dist != want[qi][i].Dist {
						t.Fatalf("query %d rank %d: (%d, %g) vs pre-close (%d, %g)",
							qi, i, got[i].ID, got[i].Dist, want[qi][i].ID, want[qi][i].Dist)
					}
				}
			}
			res, err := re.Search(novel, 1)
			if err != nil {
				t.Fatal(err)
			}
			if res[0].ID != id {
				t.Fatal("reopened index lost the inserted vector")
			}
		})
	}
}

// Rebuilding a directory under a different layout must fully replace
// the old one: a stale manifest (or stale extra shard dirs) silently
// serving the previous dataset would be a silent-wrong-data bug.
func TestFacadeRebuildAcrossLayouts(t *testing.T) {
	old := data.Generate(data.Config{N: 800, Dim: 32, Clusters: 4, Lo: 0, Hi: 1, Seed: 51})
	fresh := data.Generate(data.Config{N: 500, Dim: 32, Clusters: 4, Lo: 0, Hi: 1, Seed: 52})
	opts := func(shards int) Options {
		return Options{Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 6, Shards: shards}
	}
	dir := filepath.Join(t.TempDir(), "ix")

	// sharded(4) -> legacy: the manifest, the shard dirs, and any
	// deletion marks of the old layout must all go.
	idx, err := Build(dir, old.Vectors, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete(3); err != nil {
		t.Fatal(err)
	}
	idx.Close()
	if idx, err = Build(dir, fresh.Vectors, opts(0)); err != nil {
		t.Fatal(err)
	}
	idx.Close()
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.NumShards() != 1 || re.Count() != 500 {
		t.Fatalf("after sharded->legacy rebuild: shards=%d count=%d, want 1/500", re.NumShards(), re.Count())
	}
	if n := re.DeletedCount(); n != 0 {
		t.Fatalf("rebuilt index inherited %d deletion marks", n)
	}
	for _, stale := range []string{"shard-00", "shard-01", "shard-02", "shard-03"} {
		if _, err := os.Stat(filepath.Join(dir, stale)); err == nil {
			t.Errorf("stale %s left behind after sharded->legacy rebuild", stale)
		}
	}
	re.Close()

	// legacy -> sharded(4) -> sharded(2): the legacy root files and
	// then the stale higher shard dirs must go.
	if idx, err = Build(dir, old.Vectors, opts(4)); err != nil {
		t.Fatal(err)
	}
	idx.Close()
	for _, stale := range []string{"meta.json", "vectors.pg", "tree_00.pg"} {
		if _, err := os.Stat(filepath.Join(dir, stale)); err == nil {
			t.Errorf("stale legacy %s left behind after legacy->sharded rebuild", stale)
		}
	}
	if idx, err = Build(dir, fresh.Vectors, opts(2)); err != nil {
		t.Fatal(err)
	}
	idx.Close()
	if re, err = Open(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumShards() != 2 || re.Count() != 500 {
		t.Fatalf("after 4->2 shard rebuild: shards=%d count=%d, want 2/500", re.NumShards(), re.Count())
	}
	for _, stale := range []string{"shard-02", "shard-03"} {
		if _, err := os.Stat(filepath.Join(dir, stale)); err == nil {
			t.Errorf("stale %s left behind", stale)
		}
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := Build(filepath.Join(t.TempDir(), "x"), nil, Options{}); err == nil {
		t.Error("empty dataset must fail")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), Options{}); err == nil {
		t.Error("opening a missing index must fail")
	}
}
