package hdindex

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

func facadeFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFacadeBuildDeterministicAcrossGOMAXPROCS is the top-level
// determinism guarantee: on both layouts, the bytes a build writes —
// and therefore every search result it will ever return — depend only
// on the dataset, options, and seed, never on the machine's core count
// or the BuildWorkers budget.
func TestFacadeBuildDeterministicAcrossGOMAXPROCS(t *testing.T) {
	ds := data.Generate(data.Config{N: 1500, Dim: 32, Clusters: 5, Lo: 0, Hi: 1, Seed: 17})
	queries := ds.PerturbedQueries(8, 0.01, 4)

	for _, shards := range []int{0, 3} {
		opts := Options{Tau: 4, Omega: 8, Alpha: 256, Gamma: 64, Seed: 5, Shards: shards}
		build := func(dir string, procs, workers int) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			o := opts
			o.BuildWorkers = workers
			ix, err := Build(dir, ds.Vectors, o)
			if err != nil {
				t.Fatal(err)
			}
			ix.Close()
		}
		dirA, dirB := t.TempDir(), t.TempDir()
		build(dirA, 1, 1)
		build(dirB, 8, 8)

		fa, fb := facadeFiles(t, dirA), facadeFiles(t, dirB)
		if len(fa) != len(fb) {
			t.Fatalf("shards=%d: file sets differ: %d vs %d", shards, len(fa), len(fb))
		}
		for name, ab := range fa {
			switch filepath.Base(name) {
			case "manifest.json":
				continue // embeds a creation timestamp
			case "identity.json":
				continue // cluster UUID is random by design
			}
			if !bytes.Equal(ab, fb[name]) {
				t.Fatalf("shards=%d: %s differs across GOMAXPROCS", shards, name)
			}
		}

		ixA, err := Open(dirA, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ixB, err := Open(dirB, Options{})
		if err != nil {
			ixA.Close()
			t.Fatal(err)
		}
		for _, q := range queries {
			ra, err := ixA.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := ixB.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(ra) != len(rb) {
				t.Fatalf("shards=%d: result counts differ", shards)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("shards=%d result %d: %+v vs %+v", shards, i, ra[i], rb[i])
				}
			}
		}
		ixA.Close()
		ixB.Close()
	}
}

// TestFacadeBuildContextCancelled: cancellation through the facade, on
// both layouts, leaves a directory Open rejects.
func TestFacadeBuildContextCancelled(t *testing.T) {
	ds := data.Generate(data.Config{N: 800, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 19})
	for _, shards := range []int{0, 2} {
		dir := filepath.Join(t.TempDir(), "ix")
		opts := Options{Tau: 4, Omega: 8, Seed: 2, Shards: shards}
		ix, err := Build(dir, ds.Vectors, opts)
		if err != nil {
			t.Fatal(err)
		}
		ix.Close()

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := BuildContext(ctx, dir, ds.Vectors, opts); err == nil {
			t.Fatalf("shards=%d: cancelled build must fail", shards)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Fatalf("shards=%d: Open must reject a cancelled build's directory", shards)
		}
	}
}

// TestFacadeInfo checks the Info surface end to end: a built index
// exposes its construction breakdown, an opened one does not.
func TestFacadeInfo(t *testing.T) {
	ds := data.Generate(data.Config{N: 600, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 23})
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors, Options{Tau: 4, Omega: 8, Seed: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	info := ix.Info()
	if info.Count != 600 || info.Dim != 16 || info.NumShards != 2 || len(info.Shards) != 2 {
		t.Fatalf("bad info: %+v", info)
	}
	if info.Build == nil || info.Build.TotalMS <= 0 || info.Build.Allocs == 0 {
		t.Fatalf("fresh build must report build stats, got %+v", info.Build)
	}
	ix.Close()

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Info(); got.Build != nil {
		t.Fatal("opened index must report Build == nil")
	}
}
