package hdindex

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/hd-index/hdindex/internal/data"
)

// crashClone snapshots the index directory while the owning handle is
// still open — simulating SIGKILL: no Close, no Flush, recovery sees
// only what reached the filesystem.
func crashClone(t *testing.T, dir string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "crashed")
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		src, err := os.Open(path)
		if err != nil {
			return err
		}
		defer src.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, src); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// Every acknowledged write must survive a crash on both layouts, with
// bit-identical query answers after recovery — the facade-level leg of
// the durability round-trip suite.
func TestFacadeCrashRecovery(t *testing.T) {
	for _, shards := range []int{0, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ds := data.Generate(data.Config{Name: "fcrash", N: 900, Dim: 32, Clusters: 5, Lo: 0, Hi: 1, Seed: 171})
			queries := ds.PerturbedQueries(8, 0.02, 172)
			dir := filepath.Join(t.TempDir(), "ix")
			opts := Options{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 173,
				Shards: shards, MemtableMaxVectors: 1 << 20}
			idx, err := Build(dir, ds.Vectors[:800], opts)
			if err != nil {
				t.Fatal(err)
			}
			defer idx.Close()
			for i, v := range ds.Vectors[800:] {
				id, err := idx.Insert(v)
				if err != nil {
					t.Fatal(err)
				}
				if id != uint64(800+i) {
					t.Fatalf("insert %d assigned id %d", i, id)
				}
			}
			if err := idx.Delete(17); err != nil {
				t.Fatal(err)
			}
			if err := idx.Delete(840); err != nil {
				t.Fatal(err)
			}
			want := make([][]Result, len(queries))
			for qi, q := range queries {
				res, err := idx.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				want[qi] = res
			}

			re, err := Open(crashClone(t, dir), Options{MemtableMaxVectors: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if re.Count() != 900 {
				t.Fatalf("recovered count = %d, want 900", re.Count())
			}
			if re.DeletedCount() != 2 {
				t.Fatalf("recovered deleted = %d, want 2", re.DeletedCount())
			}
			ist := re.IngestStats()
			if ist.Replayed != 102 {
				t.Fatalf("replayed = %d, want 102", ist.Replayed)
			}
			if ist.MemtableVectors != 100 {
				t.Fatalf("recovered memtable = %d, want 100", ist.MemtableVectors)
			}
			for qi, q := range queries {
				res, err := re.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				if len(res) != len(want[qi]) {
					t.Fatalf("query %d: %d results, want %d", qi, len(res), len(want[qi]))
				}
				for i := range res {
					if res[i].ID != want[qi][i].ID ||
						math.Float64bits(res[i].Dist) != math.Float64bits(want[qi][i].Dist) {
						t.Fatalf("query %d rank %d: %+v != %+v", qi, i, res[i], want[qi][i])
					}
				}
			}
		})
	}
}

// Compact drains the memtable into the trees through the facade; query
// answers are unchanged and a purged deletion refuses Undelete with the
// exported ErrPurged.
func TestFacadeCompactAndPurge(t *testing.T) {
	ds := data.Generate(data.Config{Name: "fcomp", N: 600, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 181})
	dir := filepath.Join(t.TempDir(), "ix")
	// Exhaustive cascade: the memtable scan is exact by construction,
	// so only exact tree settings make pre- and post-compaction answers
	// comparable bit-for-bit.
	idx, err := Build(dir, ds.Vectors[:500], Options{Tau: 2, Omega: 8, M: 3,
		Alpha: 600, Beta: 600, Gamma: 600, Seed: 182, MemtableMaxVectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for _, v := range ds.Vectors[500:] {
		if _, err := idx.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Delete(42); err != nil {
		t.Fatal(err)
	}
	q := ds.Vectors[550]
	want, err := idx.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := idx.IngestStats()
	if st.MemtableVectors != 0 || st.Compactions != 1 {
		t.Fatalf("post-compaction ingest stats = %+v", st)
	}
	got, err := idx.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d changed across Compact: %+v != %+v", i, got[i], want[i])
		}
	}
	if err := idx.Undelete(42); !errors.Is(err, ErrPurged) {
		t.Fatalf("Undelete(42) = %v, want ErrPurged", err)
	}
}

// The interval-sync WAL mode threads through Options: inserts are acked
// after the page-cache write and survive a process-crash clone.
func TestFacadeWALSyncInterval(t *testing.T) {
	ds := data.Generate(data.Config{Name: "fiv", N: 300, Dim: 16, Lo: 0, Hi: 1, Seed: 191})
	dir := filepath.Join(t.TempDir(), "ix")
	idx, err := Build(dir, ds.Vectors[:280], Options{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16,
		Seed: 192, WALSyncInterval: 2 * time.Millisecond, MemtableMaxVectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for _, v := range ds.Vectors[280:] {
		if _, err := idx.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(crashClone(t, dir), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 300 {
		t.Fatalf("count = %d, want 300", re.Count())
	}
}
