package hdindex_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/data"
)

// Example demonstrates the core workflow: build an index over a dataset,
// search it, and reopen it from disk.
func Example() {
	ds := data.SIFTLike(2000, 1) // 2000 synthetic 128-d SIFT-like vectors
	dir := filepath.Join(os.TempDir(), "hdindex-example")
	defer os.RemoveAll(dir)

	idx, err := hdindex.Build(dir, ds.Vectors, hdindex.Options{
		Omega: 8, Alpha: 512, Gamma: 128, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	query := ds.Vectors[42] // search for a known vector
	results, err := idx.Search(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors of %d dims\n", idx.Count(), idx.Dim())
	fmt.Printf("got %d neighbours; nearest is id %d at distance %.0f\n",
		len(results), results[0].ID, results[0].Dist)
	// Output:
	// indexed 2000 vectors of 128 dims
	// got 3 neighbours; nearest is id 42 at distance 0
}

// Example_updates demonstrates §3.6: inserting and deleting objects in a
// built index.
func Example_updates() {
	ds := data.SIFTLike(1000, 2)
	dir := filepath.Join(os.TempDir(), "hdindex-example-updates")
	defer os.RemoveAll(dir)

	idx, err := hdindex.Build(dir, ds.Vectors, hdindex.Options{
		Omega: 8, Alpha: 256, Gamma: 64, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	id, err := idx.Insert(ds.Vectors[0]) // duplicate of object 0
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted as id %d\n", id)

	if err := idx.Delete(0); err != nil { // hide the original
		log.Fatal(err)
	}
	results, err := idx.Search(ds.Vectors[0], 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest after delete: id %d at distance %.0f\n",
		results[0].ID, results[0].Dist)
	// Output:
	// inserted as id 1000
	// nearest after delete: id 1000 at distance 0
}
