package hdindex_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/data"
)

// Example demonstrates the core workflow: build an index over a dataset,
// search it, and reopen it from disk.
func Example() {
	ds := data.SIFTLike(2000, 1) // 2000 synthetic 128-d SIFT-like vectors
	dir := filepath.Join(os.TempDir(), "hdindex-example")
	defer os.RemoveAll(dir)

	idx, err := hdindex.Build(dir, ds.Vectors, hdindex.Options{
		Omega: 8, Alpha: 512, Gamma: 128, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	query := ds.Vectors[42] // search for a known vector
	results, err := idx.Search(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors of %d dims\n", idx.Count(), idx.Dim())
	fmt.Printf("got %d neighbours; nearest is id %d at distance %.0f\n",
		len(results), results[0].ID, results[0].Dist)
	// Output:
	// indexed 2000 vectors of 128 dims
	// got 3 neighbours; nearest is id 42 at distance 0
}

// ExampleIndex_Query demonstrates per-query tuning: the same built
// index serves different recall/latency operating points by overriding
// the filter cascade per request — no rebuild between them.
func ExampleIndex_Query() {
	ds := data.SIFTLike(2000, 1)
	dir := filepath.Join(os.TempDir(), "hdindex-example-query")
	defer os.RemoveAll(dir)

	idx, err := hdindex.Build(dir, ds.Vectors, hdindex.Options{
		Omega: 8, Alpha: 512, Gamma: 128, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	ctx := context.Background()
	query := ds.Vectors[42]

	// A cheap query: small cascade, little I/O.
	cheap, err := idx.Query(ctx, query, 3,
		hdindex.WithAlpha(64), hdindex.WithStats())
	if err != nil {
		log.Fatal(err)
	}
	// A thorough query on the SAME index: the built defaults, Ptolemaic
	// filtering on top.
	thorough, err := idx.Query(ctx, query, 3,
		hdindex.WithPtolemaic(true), hdindex.WithStats())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cheap:    alpha=%d, nearest id %d\n", cheap.Stats.Alpha, cheap.Results[0].ID)
	fmt.Printf("thorough: alpha=%d ptolemaic=%v, nearest id %d\n",
		thorough.Stats.Alpha, thorough.Stats.Ptolemaic, thorough.Results[0].ID)
	fmt.Printf("thorough fetched more leaf entries: %v\n",
		thorough.Stats.TreeEntries > cheap.Stats.TreeEntries)
	// Output:
	// cheap:    alpha=64, nearest id 42
	// thorough: alpha=512 ptolemaic=true, nearest id 42
	// thorough fetched more leaf entries: true
}

// Example_updates demonstrates §3.6: inserting and deleting objects in a
// built index.
func Example_updates() {
	ds := data.SIFTLike(1000, 2)
	dir := filepath.Join(os.TempDir(), "hdindex-example-updates")
	defer os.RemoveAll(dir)

	idx, err := hdindex.Build(dir, ds.Vectors, hdindex.Options{
		Omega: 8, Alpha: 256, Gamma: 64, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	id, err := idx.Insert(ds.Vectors[0]) // duplicate of object 0
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted as id %d\n", id)

	if err := idx.Delete(0); err != nil { // hide the original
		log.Fatal(err)
	}
	results, err := idx.Search(ds.Vectors[0], 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest after delete: id %d at distance %.0f\n",
		results[0].ID, results[0].Dist)
	// Output:
	// inserted as id 1000
	// nearest after delete: id 1000 at distance 0
}
