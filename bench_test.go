// Package hdindex's benchmark suite regenerates every table and figure
// of the paper's evaluation (§5) at reduced scale — one testing.B per
// experiment, each driving the same internal/bench runner that
// cmd/hdbench runs at full scale. Run with:
//
//	go test -bench=. -benchmem
//
// The printed tables are the reproduction artefacts; b.N loops re-run
// the full experiment, so -benchtime=1x (the default for long cases) is
// typical.
//
// External test package: internal/bench (via its overload phase) now
// imports the facade, so an in-package test file importing bench would
// be an import cycle.
package hdindex_test

import (
	"fmt"
	"io"
	"os"
	"testing"

	"github.com/hd-index/hdindex/internal/bench"
)

// benchScale keeps every experiment in the seconds range. Override the
// full reproduction via cmd/hdbench.
const benchScale = 0.1

func benchCfg(b *testing.B) bench.Config {
	return bench.Config{
		Scale:   benchScale,
		Queries: 10,
		K:       20,
		WorkDir: b.TempDir(),
		Seed:    42,
	}
}

// runExperiment executes one registered experiment once per b.N,
// printing its table on the first iteration only.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var out io.Writer = io.Discard
		if i == 0 {
			out = os.Stdout
			fmt.Printf("\n===== %s =====\n", id)
		}
		cfg := benchCfg(b)
		if err := bench.Run(id, out, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1_MAPvsRatio regenerates Figure 1 (MAP vs approximation
// ratio, SIFT10K and Audio, k = 10).
func BenchmarkFig1_MAPvsRatio(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkTable3_LeafOrders regenerates Table 3 (RDB-tree leaf orders
// from Eq. 4).
func BenchmarkTable3_LeafOrders(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig4_RefObjects regenerates Figure 4(a-d): the m sweep.
func BenchmarkFig4_RefObjects(b *testing.B) { runExperiment(b, "fig4m") }

// BenchmarkFig4_Trees regenerates Figure 4(e-h): the τ sweep.
func BenchmarkFig4_Trees(b *testing.B) { runExperiment(b, "fig4tau") }

// BenchmarkFig5_Filters regenerates Figure 5: triangular vs Ptolemaic
// filtering at α=4096.
func BenchmarkFig5_Filters(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig11_FiltersAlpha2048 regenerates Figure 11 (α=2048).
func BenchmarkFig11_FiltersAlpha2048(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12_FiltersAlpha8192 regenerates Figure 12 (α=8192).
func BenchmarkFig12_FiltersAlpha8192(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig6_AlphaSweep regenerates Figure 6(a-f): the α sweep.
func BenchmarkFig6_AlphaSweep(b *testing.B) { runExperiment(b, "fig6alpha") }

// BenchmarkFig6_GammaSweep regenerates Figure 6(g,h): the γ sweep.
func BenchmarkFig6_GammaSweep(b *testing.B) { runExperiment(b, "fig6gamma") }

// BenchmarkFig7_QualityAcrossDatasets regenerates Figure 7.
func BenchmarkFig7_QualityAcrossDatasets(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8_FullComparison regenerates Figure 8 (MAP@k, query time,
// index size, build RAM, query RAM across all methods and datasets).
func BenchmarkFig8_FullComparison(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig10_RefSelection regenerates Figure 10: reference-object
// selection algorithms.
func BenchmarkFig10_RefSelection(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig13_VaryingK regenerates Figure 13: MAP@k and time vs k.
func BenchmarkFig13_VaryingK(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkTable5_Gains regenerates Table 5: the per-method gains of
// HD-Index in query time and MAP.
func BenchmarkTable5_Gains(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6_ImageSearch regenerates the §5.5 image-retrieval
// application (Table 6's pipeline with synthetic images).
func BenchmarkTable6_ImageSearch(b *testing.B) { runExperiment(b, "imagesearch") }

// BenchmarkAblation_Partitioning reproduces the §5.2.1 claim that the
// partitioning scheme barely matters.
func BenchmarkAblation_Partitioning(b *testing.B) { runExperiment(b, "abl-partition") }

// BenchmarkAblation_Curve quantifies Hilbert vs Z-order.
func BenchmarkAblation_Curve(b *testing.B) { runExperiment(b, "abl-curve") }

// BenchmarkAblation_Parallel measures parallel tree search (§5.2.8).
func BenchmarkAblation_Parallel(b *testing.B) { runExperiment(b, "abl-parallel") }

// BenchmarkAblation_Cache compares buffer pool on/off (§5 protocol).
func BenchmarkAblation_Cache(b *testing.B) { runExperiment(b, "abl-cache") }

// BenchmarkAblation_PtolemaicIO verifies §5.2.5: the Ptolemaic filter
// changes CPU time, not page reads.
func BenchmarkAblation_PtolemaicIO(b *testing.B) { runExperiment(b, "abl-ptolemaic-io") }

// BenchmarkAblation_Scaling verifies §5.4.2: query time grows far
// slower than dataset size.
func BenchmarkAblation_Scaling(b *testing.B) { runExperiment(b, "abl-scaling") }
