// Package hdindex is a from-scratch Go implementation of HD-Index
// (Arora, Sinha, Kumar, Bhattacharya — "HD-Index: Pushing the
// Scalability-Accuracy Boundary for Approximate kNN Search in
// High-Dimensional Spaces", PVLDB 11(8), 2018).
//
// HD-Index answers approximate k-nearest-neighbour queries over large,
// disk-resident, high-dimensional datasets. It splits the ν dimensions
// into τ contiguous partitions, orders each partition along a Hilbert
// space-filling curve, and indexes every partition's keys in an RDB-tree
// — a B+-tree whose leaves store each object's distances to m reference
// objects instead of descriptors or bare pointers. Queries walk the α
// nearest leaf entries per tree, prune them with triangular (and
// optionally Ptolemaic) lower bounds computed from the leaf-resident
// reference distances at zero extra I/O, and refine only the κ ≤ τ·γ
// survivors against the raw vectors.
//
// Quickstart:
//
//	idx, err := hdindex.Build("my.index", vectors, hdindex.Options{})
//	...
//	resp, err := idx.Query(ctx, query, 10)
//
// Query is the single search entry point. The knobs that govern the
// accuracy-scalability boundary — α, β, γ, the Ptolemaic filter — are
// per-query options, so one built index serves every operating point of
// the recall/latency frontier:
//
//	resp, err := idx.Query(ctx, query, 10,
//	    hdindex.WithAlpha(8192), hdindex.WithStats())
//
// The older Search/SearchWithStats/SearchBatch (×Context) method matrix
// is deprecated; each method is a thin wrapper over Query/QueryBatch
// with zero options and returns bit-identical results.
//
// The package is a thin facade over internal/core; see DESIGN.md for the
// full system inventory and EXPERIMENTS.md for the reproduction of the
// paper's evaluation.
package hdindex

import (
	"context"
	"time"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/pager"
	"github.com/hd-index/hdindex/internal/shard"
	"github.com/hd-index/hdindex/internal/telemetry"
)

// Options configures Build. The zero value uses the paper's recommended
// parameters (§5.2): m = 10 reference objects chosen by SSS, τ = 8 trees
// (16 at ν ≥ 500), α = 4096 candidates per tree narrowed to γ = α/4 by
// the triangular filter, 4 KB pages.
type Options struct {
	// Tau is the number of dimension partitions (and RDB-trees). It must
	// divide the dataset dimensionality; 0 picks the paper's default.
	Tau int
	// Omega is the Hilbert curve order: bits of resolution per dimension.
	Omega int
	// M is the number of reference objects.
	M int
	// Alpha, Beta, Gamma are the filter cascade sizes (per tree).
	Alpha, Beta, Gamma int
	// UsePtolemaic enables the Ptolemaic filter (§5.2.5): better MAP for
	// the same I/O, roughly doubled CPU time.
	UsePtolemaic bool
	// Parallel searches the τ trees concurrently.
	Parallel bool
	// BatchWorkers bounds the SearchBatch fan-out: at most this many
	// queries run concurrently (0 = GOMAXPROCS).
	BatchWorkers int
	// DisableCache turns the buffer pool off (the paper's cold-cache
	// measurement protocol).
	DisableCache bool
	// PageSize is the disk page size in bytes (default 4096).
	PageSize int
	// Seed makes reference selection and construction deterministic.
	Seed int64
	// Shards partitions the index into this many independently built
	// and searched sub-indexes under a manifest-backed on-disk layout
	// (round-robin striping; see internal/shard). 0 keeps the legacy
	// single-index layout. Open ignores this field: it auto-detects the
	// layout from the directory, so existing indexes keep working.
	Shards int
	// BuildWorkers is the total construction-parallelism budget
	// (0 = GOMAXPROCS): one bound shared by concurrently building
	// shards, the τ tree builds inside each index, and the chunked
	// Hilbert-encode workers inside each tree, so nested build
	// parallelism never oversubscribes the machine.
	BuildWorkers int
	// WALSyncInterval selects the write-ahead log's durability
	// discipline for live inserts and deletes. 0 (the default)
	// group-commits: every acknowledged mutation is fsynced, batched
	// across concurrent writers. > 0 acknowledges after the page-cache
	// write and fsyncs on this cadence — acknowledged writes survive a
	// process crash but the last interval may be lost on power failure.
	// Both Build and Open honour it.
	WALSyncInterval time.Duration
	// MemtableMaxVectors is the number of live-inserted vectors held in
	// memory before a background compaction folds them into the trees
	// (0 = 4096). It bounds both queries' brute-force memtable scan and
	// WAL replay time after a crash. Both Build and Open honour it.
	MemtableMaxVectors int
	// DisableTelemetry turns off the built-in latency histograms and
	// per-phase query spans (see Telemetry). The default-on telemetry
	// costs a few clock reads per operation; disabling it zeroes
	// Stats.Phases and empties Telemetry(). Both Build and Open honour
	// it.
	DisableTelemetry bool
}

// ErrUnknownID reports a Delete of an id the index never assigned.
var ErrUnknownID = core.ErrUnknownID

// ErrPurged reports an Undelete of an id whose deletion a compaction
// already reclaimed: the vector's tree entries are gone for good.
var ErrPurged = core.ErrPurged

// ErrWALUnavailable reports a write rejected because the write-ahead
// log failed (an fsync or append error): the index is read-only until
// reopened, while searches keep serving. The HTTP layer maps it to a
// 503 with code "wal_unavailable".
var ErrWALUnavailable = core.ErrWALUnavailable

// ErrIO classifies a disk I/O failure surfaced by the page layer
// (reads or writes of tree, vector-store, or superblock pages). Match
// with errors.Is; queries fail with a typed error instead of
// panicking, and the HTTP layer maps it to a 503 with code "io_error".
var ErrIO = pager.ErrIO

// Result is one returned neighbour, nearest first.
type Result = core.Result

// Stats reports per-query work: candidates refined, leaf entries
// fetched, physical page reads, and buffer-pool hits/misses.
type Stats = core.QueryStats

// PoolStats aggregates the buffer-pool and I/O counters of every file
// backing the index (all trees and the vector store; every shard on a
// sharded layout) since open or the last reset. Hits/Misses expose the
// cache behaviour of the refinement step's page-ordered fetch.
type PoolStats = pager.Stats

// backend is the method set the facade needs from an index layout.
// Both *core.Index (the legacy single-index layout) and *shard.Sharded
// (the manifest-backed sharded layout) implement it, which is what lets
// every caller above this file — server, tools, examples — stay
// layout-agnostic. Query/QueryBatch are the only search entry points:
// every facade search method, legacy or not, funnels through them, so
// the per-query options path is the only path there is.
type backend interface {
	Query(ctx context.Context, q []float32, k int, o core.SearchOptions) ([]core.Result, *core.QueryStats, error)
	QueryBatch(ctx context.Context, queries [][]float32, k int, o core.SearchOptions) ([][]core.Result, []*core.QueryStats, error)
	Insert(vec []float32) (uint64, error)
	Delete(id uint64) error
	Undelete(id uint64) error
	Compact(ctx context.Context) error
	IngestStats() core.IngestStats
	Count() uint64
	Dim() int
	DeletedCount() int
	SizeOnDisk() int64
	IOStats() pager.Stats
	BuildStats() *core.BuildStats
	Telemetry() telemetry.CollectorSnapshot
	Params() core.Params
	Flush() error
	Close() error
}

// Index is a built HD-Index — monolithic or sharded; the layout is
// transparent to every method. It is safe for concurrent searches.
type Index struct {
	ix backend
}

// ShardInfo is one shard's row of an index's layout breakdown. A legacy
// single-index layout reports exactly one shard.
type ShardInfo struct {
	ID         int
	Count      uint64
	Deleted    int
	SizeOnDisk int64
}

// BuildStats is the construction cost breakdown of a freshly built
// index: per-phase milliseconds (reference distances, Hilbert encode,
// radix sort, bulk load), heap allocations, and the observed peak heap.
// On a sharded layout the phase times and allocations are summed across
// shards while TotalMS stays wall clock.
type BuildStats = core.BuildStats

// Info is a point-in-time descriptive summary of an index: size,
// layout, and — when this process built it — the construction cost
// breakdown.
type Info struct {
	Count      uint64
	Dim        int
	Deleted    int
	SizeOnDisk int64
	NumShards  int
	Shards     []ShardInfo
	// Build is the construction cost of this index when it was built
	// by this process; nil after Open.
	Build *BuildStats
}

// Info returns the index's descriptive summary. Build statistics are
// only available on the handle returned by Build — an Opened index
// reports Build == nil.
func (i *Index) Info() Info {
	return Info{
		Count:      i.Count(),
		Dim:        i.Dim(),
		Deleted:    i.DeletedCount(),
		SizeOnDisk: i.SizeOnDisk(),
		NumShards:  i.NumShards(),
		Shards:     i.Shards(),
		Build:      i.ix.BuildStats(),
	}
}

// BuildStats returns the construction cost breakdown when this handle
// built the index, nil otherwise. Shorthand for Info().Build.
func (i *Index) BuildStats() *BuildStats { return i.ix.BuildStats() }

// Build constructs an HD-Index over vectors in the directory dir.
// All vectors must share the same dimensionality. Options.Shards
// selects the on-disk layout: 0 writes the legacy single-index layout,
// N >= 1 a manifest-backed layout of N concurrently built shards.
func Build(dir string, vectors [][]float32, o Options) (*Index, error) {
	return BuildContext(context.Background(), dir, vectors, o)
}

// BuildContext is Build honouring ctx: construction checks for
// cancellation between work chunks (reference distances, per-tree
// Hilbert encoding, shard fan-out) and returns promptly with ctx's
// error. A cancelled build never writes the layout's commit point
// (meta.json or manifest.json), so Open rejects the directory instead
// of serving a half-built index.
func BuildContext(ctx context.Context, dir string, vectors [][]float32, o Options) (*Index, error) {
	p := core.Params{
		Tau:          o.Tau,
		Omega:        o.Omega,
		M:            o.M,
		Alpha:        o.Alpha,
		Beta:         o.Beta,
		Gamma:        o.Gamma,
		UsePtolemaic: o.UsePtolemaic,
		Parallel:     o.Parallel,
		BatchWorkers: o.BatchWorkers,
		BuildWorkers: o.BuildWorkers,
		DisableCache: o.DisableCache,
		PageSize:     o.PageSize,
		Seed:         o.Seed,

		WALSyncInterval:    o.WALSyncInterval,
		MemtableMaxVectors: o.MemtableMaxVectors,
		DisableTelemetry:   o.DisableTelemetry,
	}
	if o.Shards > 0 {
		sh, err := shard.BuildContext(ctx, dir, vectors, shard.Params{
			Params: p, Shards: o.Shards, BuildWorkers: o.BuildWorkers,
		})
		if err != nil {
			return nil, err
		}
		return &Index{ix: sh}, nil
	}
	// A legacy build into a directory that previously held a sharded
	// layout must remove it first — a stale manifest would keep Open's
	// auto-detection serving the old shards, and stale shard dirs would
	// leak a full copy of the previous dataset.
	if err := shard.ClearLayout(dir); err != nil {
		return nil, err
	}
	ix, err := core.BuildContext(ctx, dir, vectors, p)
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// Open loads an index previously written by Build, auto-detecting the
// layout: a directory with a manifest.json opens as a sharded index,
// anything else as the legacy single-index layout.
func Open(dir string, o Options) (*Index, error) {
	opts := core.OpenOptions{
		DisableCache: o.DisableCache,
		Parallel:     o.Parallel,
		BatchWorkers: o.BatchWorkers,

		WALSyncInterval:    o.WALSyncInterval,
		MemtableMaxVectors: o.MemtableMaxVectors,
		DisableTelemetry:   o.DisableTelemetry,
	}
	if shard.IsSharded(dir) {
		sh, err := shard.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		return &Index{ix: sh}, nil
	}
	ix, err := core.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// Search returns the approximate k nearest neighbours of q.
//
// Deprecated: use Query, which subsumes the whole Search* method matrix
// (context, stats, and per-query tuning). Search(q, k) is exactly
// Query(context.Background(), q, k) and stays bit-identical to it.
func (i *Index) Search(q []float32, k int) ([]Result, error) {
	res, _, err := i.ix.Query(context.Background(), q, k, core.SearchOptions{})
	return res, err
}

// SearchContext is Search honouring ctx: the query returns early with
// ctx.Err() when ctx is cancelled or its deadline expires.
//
// Deprecated: use Query.
func (i *Index) SearchContext(ctx context.Context, q []float32, k int) ([]Result, error) {
	res, _, err := i.ix.Query(ctx, q, k, core.SearchOptions{})
	return res, err
}

// SearchWithStats is Search plus work counters. On a sharded index the
// counters are summed across shards; see Shards for the breakdown.
//
// Deprecated: use Query with WithStats.
func (i *Index) SearchWithStats(q []float32, k int) ([]Result, *Stats, error) {
	return i.ix.Query(context.Background(), q, k, core.SearchOptions{})
}

// SearchWithStatsContext is SearchContext plus work counters.
//
// Deprecated: use Query with WithStats.
func (i *Index) SearchWithStatsContext(ctx context.Context, q []float32, k int) ([]Result, *Stats, error) {
	return i.ix.Query(ctx, q, k, core.SearchOptions{})
}

// SearchBatch answers many queries concurrently, preserving input order
// — the natural shape for multi-descriptor workloads like §5.5's image
// search.
//
// Deprecated: use QueryBatch.
func (i *Index) SearchBatch(queries [][]float32, k int) ([][]Result, error) {
	res, _, err := i.ix.QueryBatch(context.Background(), queries, k, core.SearchOptions{})
	return res, err
}

// SearchBatchContext is SearchBatch honouring ctx: remaining queries are
// abandoned promptly on cancellation and ctx.Err() is returned.
//
// Deprecated: use QueryBatch.
func (i *Index) SearchBatchContext(ctx context.Context, queries [][]float32, k int) ([][]Result, error) {
	res, _, err := i.ix.QueryBatch(ctx, queries, k, core.SearchOptions{})
	return res, err
}

// Insert adds a vector to the index (§3.6) and returns its id. The
// insert is appended to a write-ahead log before Insert returns (see
// Options.WALSyncInterval for the exact durability guarantee), lands in
// an in-memory memtable that queries scan exactly, and is folded into
// the index structure by a background compaction.
func (i *Index) Insert(vec []float32) (uint64, error) {
	return i.ix.Insert(vec)
}

// Delete marks an object as deleted (§3.6); it will no longer be
// returned by Search. The mark is WAL-logged before Delete returns.
func (i *Index) Delete(id uint64) error { return i.ix.Delete(id) }

// Undelete removes a deletion mark. It fails with ErrPurged when a
// compaction has already reclaimed the deletion.
func (i *Index) Undelete(id uint64) error { return i.ix.Undelete(id) }

// Compact synchronously folds any memtable-resident inserts into the
// index trees and truncates the write-ahead log. Normally the
// background compactor does this when the memtable crosses
// Options.MemtableMaxVectors; Compact forces it — useful before
// benchmarking reads or snapshotting the directory. No-op when the
// memtable is empty.
func (i *Index) Compact(ctx context.Context) error { return i.ix.Compact(ctx) }

// IngestStats is a point-in-time snapshot of the live-ingest machinery:
// memtable occupancy, WAL size and sync counts, records replayed at
// open, and compaction history. On a sharded layout counters are summed
// across shards.
type IngestStats = core.IngestStats

// IngestStats returns the live-ingest counters.
func (i *Index) IngestStats() IngestStats { return i.ix.IngestStats() }

// Count returns the number of indexed vectors.
func (i *Index) Count() uint64 { return i.ix.Count() }

// Dim returns the indexed dimensionality.
func (i *Index) Dim() int { return i.ix.Dim() }

// SizeOnDisk returns the total size of the index files in bytes.
func (i *Index) SizeOnDisk() int64 { return i.ix.SizeOnDisk() }

// DeletedCount returns the number of deletion marks.
func (i *Index) DeletedCount() int { return i.ix.DeletedCount() }

// IOStats returns the cumulative pager counters across all index files;
// PoolStats.HitRatio summarises buffer-pool effectiveness.
func (i *Index) IOStats() PoolStats { return i.ix.IOStats() }

// Telemetry is a point-in-time copy of the index's latency histograms:
// whole queries, the per-phase breakdown, inserts, compactions, and WAL
// fsyncs. Histograms are log-bucketed (quantile estimates within 3.125%)
// with exact counts, sums, and maxima; on a sharded layout the per-shard
// histograms are bucket-merged, so quantiles reflect the layout-wide
// distribution. Empty when Options.DisableTelemetry was set.
type Telemetry = telemetry.CollectorSnapshot

// Telemetry returns the index's latency histogram snapshot.
func (i *Index) Telemetry() Telemetry { return i.ix.Telemetry() }

// NumShards returns the number of shards in the on-disk layout; a
// legacy single-index layout counts as 1.
func (i *Index) NumShards() int {
	if sh, ok := i.ix.(*shard.Sharded); ok {
		return sh.NumShards()
	}
	return 1
}

// Shards returns the per-shard layout breakdown, in shard order. A
// legacy single-index layout reports itself as one shard, so callers
// (the /stats endpoint, hdtool info) render both layouts uniformly.
func (i *Index) Shards() []ShardInfo {
	if sh, ok := i.ix.(*shard.Sharded); ok {
		infos := sh.ShardInfos()
		out := make([]ShardInfo, len(infos))
		for j, in := range infos {
			out[j] = ShardInfo{ID: in.ID, Count: in.Count, Deleted: in.Deleted, SizeOnDisk: in.SizeOnDisk}
		}
		return out
	}
	return []ShardInfo{{ID: 0, Count: i.ix.Count(), Deleted: i.ix.DeletedCount(), SizeOnDisk: i.ix.SizeOnDisk()}}
}

// Flush persists all state.
func (i *Index) Flush() error { return i.ix.Flush() }

// Close releases all file handles.
func (i *Index) Close() error { return i.ix.Close() }
